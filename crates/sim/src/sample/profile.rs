//! Pass 1 and pass 2 of sampled-plan construction.
//!
//! **Pass 1** ([`profile`]) runs the functional interpreter over the
//! compiled kernel and slices the dynamic block stream into intervals of
//! at least `interval_len` retired instructions (intervals close only at
//! block boundaries, so an interval is always a whole number of block
//! executions). It emits one normalized basic-block vector per interval
//! plus the *exact* dynamic instruction counts and final-memory checksum
//! — the sampled result reports those exactly; only cycle-level metrics
//! are estimated.
//!
//! **Pass 2** ([`warm_replay`]) re-runs the same execution as one
//! warm-and-replay sweep: skipped intervals run functionally while
//! keeping the cache hierarchy, TLBs, MSHRs, and branch predictor warm
//! under a retired-instruction proxy clock, and each representative
//! interval is cycle-simulated in place on that exact warm state as
//! execution reaches it (see DESIGN.md §13). The per-representative
//! timing deltas are stored in the plan; sampled runs extrapolate from
//! them without re-simulating.

use crate::config::SimConfig;
use crate::metrics::InstCounts;
use bsched_ir::{
    interp::{step, MemImage, RegFile},
    BlockId, ExecError, Program, Terminator,
};
use bsched_mem::Hierarchy;

/// Everything pass 1 learns about one program under one interval length.
#[derive(Debug)]
pub(crate) struct IntervalProfile {
    /// One normalized BBV per interval: per-block executed-instruction
    /// shares (terminator counted as one so empty blocks still register).
    pub bbvs: Vec<Vec<f64>>,
    /// Retired (non-terminator) instructions per interval.
    pub insts_per: Vec<u64>,
    /// Block-visit ordinal at which each interval starts.
    pub start_ord: Vec<u64>,
    /// First block of each interval.
    pub start_block: Vec<BlockId>,
    /// Number of block executions in each interval.
    pub n_blocks: Vec<u64>,
    /// Exact dynamic instruction counts (terminators included), equal to
    /// what the exact engines report.
    pub counts: InstCounts,
    /// Exact FNV-1a checksum of the final memory image.
    pub checksum: u64,
    /// Total retired (non-terminator) instructions.
    pub total_insts: u64,
}

/// Runs the functional interpreter and profiles per-interval BBVs.
///
/// # Errors
///
/// [`ExecError::OutOfFuel`] past `fuel` retired instructions,
/// [`ExecError::WildStore`] on a store outside the memory image — the
/// same failures the exact engines report for the same program.
pub(crate) fn profile(
    program: &Program,
    interval_len: u64,
    fuel: u64,
) -> Result<IntervalProfile, ExecError> {
    let func = program.main();
    let nb = func.blocks().len();

    // Static per-block counts; one `scaled_add` per block at the end
    // reproduces the exact engines' per-instruction accumulation.
    let mut static_counts = vec![InstCounts::default(); nb];
    let mut block_insts = vec![0u64; nb];
    for (id, b) in func.iter_blocks() {
        for inst in &b.insts {
            static_counts[id.index()].record(inst);
        }
        block_insts[id.index()] = b.insts.len() as u64;
    }

    let mut regs = RegFile::new(func);
    let mut mem = MemImage::new(program);
    let bases = mem.region_bases.clone();

    let mut visits = vec![0u64; nb];
    let mut branches = 0u64;
    let mut jumps = 0u64;
    let mut executed = 0u64;

    let mut out = IntervalProfile {
        bbvs: Vec::new(),
        insts_per: Vec::new(),
        start_ord: Vec::new(),
        start_block: Vec::new(),
        n_blocks: Vec::new(),
        counts: InstCounts::default(),
        checksum: 0,
        total_insts: 0,
    };

    // Current-interval accumulators.
    let mut cur_bbv = vec![0u64; nb];
    let mut cur_insts = 0u64;
    let mut cur_blocks = 0u64;
    let mut cur_start_ord = 0u64;
    let mut cur_start_block = func.entry();

    let mut ord = 0u64;
    let mut cur = func.entry();
    loop {
        if cur_blocks == 0 {
            cur_start_ord = ord;
            cur_start_block = cur;
        }
        visits[cur.index()] += 1;
        cur_bbv[cur.index()] += 1;
        let block = func.block(cur);
        for inst in &block.insts {
            executed += 1;
            if executed > fuel {
                return Err(ExecError::OutOfFuel { fuel });
            }
            step(inst, &mut regs, &mut mem, &bases)?;
        }
        ord += 1;
        cur_blocks += 1;
        cur_insts += block_insts[cur.index()];

        let mut done = false;
        let next = match &block.term {
            Terminator::Jmp(t) => {
                jumps += 1;
                *t
            }
            Terminator::Br {
                cond,
                when,
                taken,
                fall,
            } => {
                branches += 1;
                if when.holds(regs.get(*cond).as_int()) {
                    *taken
                } else {
                    *fall
                }
            }
            Terminator::Ret => {
                done = true;
                cur
            }
        };

        if done || cur_insts >= interval_len {
            // Close the interval: BBV dimensions weighted by executed
            // instructions (+1 for the terminator), L1-normalized.
            let mut v: Vec<f64> = cur_bbv
                .iter()
                .enumerate()
                .map(|(b, &n)| (n * (block_insts[b] + 1)) as f64)
                .collect();
            let total: f64 = v.iter().sum();
            if total > 0.0 {
                for x in &mut v {
                    *x /= total;
                }
            }
            out.bbvs.push(v);
            out.insts_per.push(cur_insts);
            out.start_ord.push(cur_start_ord);
            out.start_block.push(cur_start_block);
            out.n_blocks.push(cur_blocks);
            cur_bbv.iter_mut().for_each(|x| *x = 0);
            cur_insts = 0;
            cur_blocks = 0;
        }
        if done {
            break;
        }
        cur = next;
    }

    for (b, &n) in visits.iter().enumerate() {
        out.counts.scaled_add(&static_counts[b], n);
    }
    out.counts.branches += branches;
    out.counts.jumps += jumps;
    out.checksum = mem.checksum();
    out.total_insts = executed;
    Ok(out)
}

use crate::branch::BranchPredictor;

/// Pass 2: one warm-and-replay sweep. Fast-forwards functionally from a
/// cold start, keeping the cache hierarchy, TLBs, MSHRs, and branch
/// predictor warm under a one-cycle-per-instruction proxy clock through
/// every *skipped* interval, and cycle-simulating each representative
/// interval in place the moment execution reaches its boundary
/// ([`super::replay::replay_interval`]). Every representative therefore
/// replays against exactly the architectural and micro-architectural
/// state the full execution would have produced — no checkpoint
/// snapshots, no stitching bias from skipped warm-up.
///
/// Returns the interval-local timing metrics per representative, in
/// `rep_intervals` order. `rep_intervals` must be sorted ascending;
/// execution stops as soon as the last representative is replayed.
///
/// # Errors
///
/// Propagates the functional interpreter's errors; pass 1 already
/// succeeded, so in practice this cannot fail.
pub(crate) fn warm_replay(
    program: &Program,
    config: &SimConfig,
    prof: &IntervalProfile,
    rep_intervals: &[usize],
) -> Result<Vec<crate::metrics::SimMetrics>, ExecError> {
    let func = program.main();
    let (block_addr, _) = crate::machine::code_layout(func);
    let mut regs = RegFile::new(func);
    let mut mem = MemImage::new(program);
    let bases = mem.region_bases.clone();

    let mut hier = Hierarchy::new(config.mem);
    let mut pred = BranchPredictor::new(&config.branch);
    let mut now = 0u64;

    let mut deltas = Vec::with_capacity(rep_intervals.len());
    let mut next_rep = 0usize;

    let mut ord = 0u64;
    let mut cur = func.entry();
    while next_rep < rep_intervals.len() {
        let iv = rep_intervals[next_rep];
        if ord == prof.start_ord[iv] {
            debug_assert_eq!(cur, prof.start_block[iv]);
            let (dm, next) = super::replay::replay_interval(
                func,
                &block_addr,
                config,
                cur,
                prof.n_blocks[iv],
                &mut regs,
                &mut mem,
                &mut hier,
                &mut pred,
                &mut now,
            )?;
            deltas.push(dm);
            ord += prof.n_blocks[iv];
            next_rep += 1;
            match next {
                Some(b) => cur = b,
                None => break, // the interval ended at Ret
            }
            continue;
        }

        // A skipped block: execute functionally, warming hierarchy and
        // predictor under the proxy clock.
        let block = func.block(cur);
        let base_pc = block_addr[cur.index()];
        for (k, inst) in block.insts.iter().enumerate() {
            if config.model_ifetch {
                hier.inst_fetch(base_pc + 4 * k as u64, now);
            }
            match inst.op {
                bsched_ir::Op::Ld => {
                    let base = regs.get(inst.mem_base()).as_int();
                    let addr = base.wrapping_add(inst.mem_disp()) as u64;
                    hier.data_read(addr, now);
                }
                bsched_ir::Op::St => {
                    let base = regs.get(inst.mem_base()).as_int();
                    let addr = base.wrapping_add(inst.mem_disp()) as u64;
                    hier.data_write(addr, now);
                }
                _ => {}
            }
            now += 1;
            step(inst, &mut regs, &mut mem, &bases)?;
        }
        ord += 1;

        let term_pc = base_pc + 4 * block.len() as u64;
        if config.model_ifetch {
            hier.inst_fetch(term_pc, now);
        }
        now += 1;
        cur = match &block.term {
            Terminator::Jmp(t) => *t,
            Terminator::Br {
                cond,
                when,
                taken,
                fall,
            } => {
                let is_taken = when.holds(regs.get(*cond).as_int());
                pred.predict_and_update(term_pc, is_taken);
                if is_taken {
                    *taken
                } else {
                    *fall
                }
            }
            Terminator::Ret => {
                unreachable!("all representatives start before the final Ret")
            }
        };
    }
    debug_assert_eq!(deltas.len(), rep_intervals.len());
    Ok(deltas)
}
