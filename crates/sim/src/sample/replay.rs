//! Cycle-accurate replay of one representative interval.
//!
//! A trimmed copy of the interpreting engine's inner loop
//! (`crate::machine`): same scoreboard, issue-group, interlock, and
//! memory-hierarchy behaviour, but bounded by a block-execution count
//! instead of fuel, with no tracing or per-site attribution. The replay
//! runs *in place* on the plan-construction pass's live architectural
//! and warm state — it both measures the interval and fast-forwards
//! through it — and returns the successor block so the caller's
//! functional warming can continue where the interval ended.

use crate::branch::BranchPredictor;
use crate::config::SimConfig;
use crate::machine::{Scoreboard, CODE_BASE, NO_SITE};
use crate::metrics::SimMetrics;
use bsched_ir::{
    interp::{MemImage, RegFile},
    BlockId, ExecError, Function, Op, Terminator, Value,
};
use bsched_mem::Hierarchy;
use bsched_mem::MemStats;

/// Replays `n_blocks` block executions starting at `start_block`,
/// returning the *interval-local* timing metrics (cycle and stall deltas
/// plus the memory-stat delta; instruction counts are left zero — the
/// plan's exact profile supplies those) and the block execution resumes
/// at afterwards (`None` when the interval ended at `Ret`).
///
/// All state is mutated in place: `regs`/`mem` advance functionally
/// through the interval exactly as the surrounding fast-forward would,
/// and `hier`/`pred`/`now` accumulate the interval's real timing on top
/// of the proxy-clock warming that preceded it.
///
/// # Errors
///
/// [`ExecError::WildStore`] on a store outside the memory image (cannot
/// happen for programs whose functional profile succeeded).
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_interval(
    func: &Function,
    block_addr: &[u64],
    config: &SimConfig,
    start_block: BlockId,
    n_blocks: u64,
    regs: &mut RegFile,
    mem: &mut MemImage,
    hier: &mut Hierarchy,
    pred: &mut BranchPredictor,
    now: &mut u64,
) -> Result<(SimMetrics, Option<BlockId>), ExecError> {
    let mut board = Scoreboard::new(func);
    let mut m = SimMetrics::default();
    let start_now = *now;
    let stats_before = *hier.stats();

    let width = config.issue_width.max(1);
    let ports = config.mem_ports.max(1);
    let mut slot: u32 = 0;
    let mut mem_slot: u32 = 0;
    let fixed_latency = |op: Op| -> u32 {
        if config.uniform_fixed_latency {
            1
        } else {
            op.latency()
        }
    };

    let mut t = *now;
    let mut cur = start_block;
    let mut visited = 0u64;
    let mut next_block = None;
    'run: loop {
        let block = func.block(cur);
        let base_pc = block_addr[cur.index()];
        for (k, inst) in block.insts.iter().enumerate() {
            if config.model_ifetch {
                let f = hier.inst_fetch(base_pc + 4 * k as u64, t);
                if f.ready_at > t {
                    m.fetch_stall += f.ready_at - t;
                    t = f.ready_at;
                    slot = 0;
                    mem_slot = 0;
                }
            }
            if slot >= width || (inst.op.is_memory() && mem_slot >= ports) {
                t += 1;
                slot = 0;
                mem_slot = 0;
            }
            let mut op_ready = t;
            let mut blame_site = NO_SITE;
            for &s in inst.srcs() {
                let (rt, site) = board.ready(s);
                if rt > op_ready || (rt == op_ready && site != NO_SITE && rt > t) {
                    op_ready = rt;
                    blame_site = site;
                }
            }
            if op_ready > t {
                let stall = op_ready - t;
                if blame_site != NO_SITE {
                    m.load_interlock += stall;
                } else {
                    m.fixed_interlock += stall;
                }
                t = op_ready;
                slot = 0;
                mem_slot = 0;
            }
            match inst.op {
                Op::Ld => {
                    let site = ((base_pc - CODE_BASE) / 4) as u32 + k as u32;
                    let base = regs.get(inst.mem_base()).as_int();
                    let addr = base.wrapping_add(inst.mem_disp()) as u64;
                    let stall_before = hier.stats().mshr_stall_cycles;
                    let a = hier.data_read(addr, t);
                    let mshr_stall = hier.stats().mshr_stall_cycles - stall_before;
                    let issue_delay = a.issue_at - t;
                    m.load_interlock += mshr_stall;
                    m.tlb_stall += issue_delay - mshr_stall;
                    if a.issue_at > t {
                        t = a.issue_at;
                        slot = 0;
                        mem_slot = 0;
                    }
                    let dst = inst.dst.expect("load has a destination");
                    regs.set(dst, Value::from_bits(dst.class(), mem.load(addr)));
                    board.set(dst, a.ready_at, site);
                }
                Op::St => {
                    let base = regs.get(inst.mem_base()).as_int();
                    let addr = base.wrapping_add(inst.mem_disp()) as u64;
                    let wb_before = hier.stats().wb_stall_cycles;
                    let a = hier.data_write(addr, t);
                    let wb_stall = hier.stats().wb_stall_cycles - wb_before;
                    m.store_stall += wb_stall;
                    m.tlb_stall += (a.issue_at - t) - wb_stall;
                    if a.issue_at > t {
                        t = a.issue_at;
                        slot = 0;
                        mem_slot = 0;
                    }
                    mem.store(addr, regs.get(inst.srcs()[0]).to_bits())?;
                }
                Op::LdAddr => {
                    let region = inst
                        .mem
                        .and_then(|mm| mm.region)
                        .expect("ldaddr has a region");
                    let dst = inst.dst.expect("ldaddr has a destination");
                    regs.set(dst, Value::Int(mem.region_bases[region.index() as usize] as i64));
                    board.set(dst, t + u64::from(fixed_latency(inst.op)), NO_SITE);
                }
                _ => {
                    let mut vals = [Value::Int(0); 3];
                    for (v, &s) in vals.iter_mut().zip(inst.srcs()) {
                        *v = regs.get(s);
                    }
                    let v =
                        bsched_ir::value::eval(inst.op, &vals[..inst.srcs().len()], inst.imm, inst.fimm);
                    let dst = inst.dst.expect("pure op has a destination");
                    regs.set(dst, v);
                    board.set(dst, t + u64::from(fixed_latency(inst.op)), NO_SITE);
                }
            }
            slot += 1;
            if inst.op.is_memory() {
                mem_slot += 1;
            }
        }

        let term_pc = base_pc + 4 * block.len() as u64;
        if config.model_ifetch {
            let f = hier.inst_fetch(term_pc, t);
            if f.ready_at > t {
                m.fetch_stall += f.ready_at - t;
                t = f.ready_at;
            }
        }
        visited += 1;
        let next: BlockId = match &block.term {
            Terminator::Jmp(target) => {
                t += 1;
                slot = 0;
                mem_slot = 0;
                *target
            }
            Terminator::Br {
                cond,
                when,
                taken,
                fall,
            } => {
                let (rt, site) = board.ready(*cond);
                if rt > t {
                    let stall = rt - t;
                    if site != NO_SITE {
                        m.load_interlock += stall;
                    } else {
                        m.fixed_interlock += stall;
                    }
                    t = rt;
                }
                let is_taken = when.holds(regs.get(*cond).as_int());
                if !pred.predict_and_update(term_pc, is_taken) {
                    m.branch_penalty += u64::from(config.branch.mispredict_penalty);
                    t += u64::from(config.branch.mispredict_penalty);
                }
                t += 1;
                slot = 0;
                mem_slot = 0;
                if is_taken {
                    *taken
                } else {
                    *fall
                }
            }
            Terminator::Ret => break 'run,
        };
        if visited == n_blocks {
            next_block = Some(next);
            break 'run;
        }
        cur = next;
    }

    *now = t;
    m.cycles = t - start_now;
    m.mem = stats_delta(hier.stats(), &stats_before);
    Ok((m, next_block))
}

/// Field-wise difference of two monotonically growing stat snapshots.
fn stats_delta(after: &MemStats, before: &MemStats) -> MemStats {
    MemStats {
        l1d_hits: after.l1d_hits - before.l1d_hits,
        l2_hits: after.l2_hits - before.l2_hits,
        l3_hits: after.l3_hits - before.l3_hits,
        mem_reads: after.mem_reads - before.mem_reads,
        mshr_merges: after.mshr_merges - before.mshr_merges,
        mshr_stall_cycles: after.mshr_stall_cycles - before.mshr_stall_cycles,
        dtb_misses: after.dtb_misses - before.dtb_misses,
        itb_misses: after.itb_misses - before.itb_misses,
        icache_misses: after.icache_misses - before.icache_misses,
        stores: after.stores - before.stores,
        wb_stall_cycles: after.wb_stall_cycles - before.wb_stall_cycles,
        prefetches: after.prefetches - before.prefetches,
        prefetch_useful: after.prefetch_useful - before.prefetch_useful,
    }
}
