//! Sampled simulation: SimPoint-style phase clustering.
//!
//! Exhaustive cycle simulation stops scaling with problem size; sampling
//! buys that headroom. The recipe (Sherwood et al., ASPLOS 2002, adapted
//! to this repo in DESIGN.md §13):
//!
//! 1. **Profile**: run the functional interpreter, slice the dynamic
//!    block stream into intervals of ≥ `interval` retired instructions,
//!    and emit one normalized basic-block vector per interval
//!    ([`profile`]).
//! 2. **Cluster**: seeded k-means over the BBVs picks ≤ `k` phases;
//!    each phase's members are split into up to `reps` contiguous
//!    strata (in interval order) and the center member of each stratum
//!    is sampled, instruction-weighted ([`kmeans`]).
//! 3. **Warm-and-replay**: fast-forward functionally through the
//!    skipped intervals while keeping the cache hierarchy, TLBs, MSHRs,
//!    and branch predictor warm under a proxy clock, and cycle-simulate
//!    each representative interval *in place* as execution reaches it —
//!    every representative replays against exactly the warm state the
//!    full execution would have produced.
//! 4. **Extrapolate**: scale each representative's interval-local
//!    timing metrics by its stratum's total instructions
//!    ([`run_sampled`]).
//!
//! Steps 1–3 build a [`SamplePlan`] — the per-representative timing
//! deltas plus the exact functional outcome, a few kilobytes — cached
//! process-wide per (program, machine config, sample config), so
//! repeated sampled runs pay only step 4. The functional outcome —
//! instruction counts and memory checksum — comes from the exact
//! profile, so cross-checks against the reference interpreter still
//! hold; only cycle-level metrics are estimates.
//!
//! Like the engine axis ([`crate::SimEngine`]), the mode axis is an
//! execution detail, **not** an experiment knob: it must never enter
//! `CompileOptions` or any exact-result cache key. Unlike the engine
//! axis it is not metrics-invariant, so the harness keeps sampled
//! results in a separate store.

pub mod kmeans;
mod profile;
mod replay;

use crate::config::SimConfig;
use crate::machine::SimResult;
use crate::metrics::{InstCounts, SimMetrics};
use bsched_ir::{ExecError, Program};
use bsched_mem::MemStats;
use bsched_util::spec;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock};

/// Default interval length in retired instructions.
pub const DEFAULT_INTERVAL: u64 = 1000;
/// Default maximum number of clusters.
pub const DEFAULT_K: u32 = 8;
/// Default members replayed per cluster (stratified sampling).
pub const DEFAULT_REPS: u32 = 8;
/// Default k-means seed.
pub const DEFAULT_SEED: u64 = 0xb5ed;

/// Configuration of one sampled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleConfig {
    /// Minimum retired (non-terminator) instructions per interval;
    /// intervals close at the first block boundary at or past this.
    pub interval: u64,
    /// Maximum number of clusters (phases). Degrades gracefully to one
    /// cluster per interval when it exceeds the interval count.
    pub k: u32,
    /// Members replayed per cluster: the cluster's members are split
    /// into up to `reps` contiguous strata in interval order and each
    /// stratum samples its center member, so behaviour that drifts
    /// *within* a BBV-identical phase (e.g. cache warm-up across a
    /// single hot loop) is averaged instead of judged from one
    /// interval.
    pub reps: u32,
    /// Seed for k-means initialisation and projection.
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            interval: DEFAULT_INTERVAL,
            k: DEFAULT_K,
            reps: DEFAULT_REPS,
            seed: DEFAULT_SEED,
        }
    }
}

impl SampleConfig {
    /// The accepted spellings of a sampling spec, for error messages.
    #[must_use]
    pub fn valid_spec() -> &'static str {
        "comma-separated k=<clusters, >= 1>, interval=<retired insts, >= 1>, \
         reps=<members per cluster, >= 1>, seed=<integer, 0x-hex ok> \
         (each optional, e.g. \"k=8,interval=1000\"); \
         or \"1\"/\"on\"/\"default\" for the defaults"
    }

    /// Short stable label, used by run reports (the `Display` form:
    /// non-default fields only beyond `k` and `interval`).
    #[must_use]
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for SampleConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k={},interval={}", self.k, self.interval)?;
        if self.reps != DEFAULT_REPS {
            write!(f, ",reps={}", self.reps)?;
        }
        if self.seed != DEFAULT_SEED {
            write!(f, ",seed={:#x}", self.seed)?;
        }
        Ok(())
    }
}

impl FromStr for SampleConfig {
    type Err = String;

    /// Parses a sampling spec as accepted by `--sample=` and
    /// `BSCHED_SAMPLE`: see [`SampleConfig::valid_spec`]. Grammar and
    /// error shape come from [`bsched_util::spec`], the contract shared
    /// with `--engine=` and `--machine=`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad =
            |reason: &str| Err(spec::invalid("sampling", s, reason, SampleConfig::valid_spec()));
        match s.trim() {
            "" => return bad("empty spec"),
            "1" | "on" | "true" | "default" => return Ok(SampleConfig::default()),
            _ => {}
        }
        let mut cfg = SampleConfig::default();
        let parts = match spec::pairs(s, ',') {
            Ok(parts) => parts,
            Err(reason) => return bad(&reason),
        };
        for (key, value) in parts {
            let Some(n) = spec::parse_u64(value) else {
                return bad(&format!("bad value {value:?} for {key:?}"));
            };
            match key {
                "k" => {
                    if n == 0 || n > u64::from(u32::MAX) {
                        return bad("k must be between 1 and 2^32-1");
                    }
                    cfg.k = n as u32;
                }
                "interval" => {
                    if n == 0 {
                        return bad("interval must be >= 1");
                    }
                    cfg.interval = n;
                }
                "reps" => {
                    if n == 0 || n > u64::from(u32::MAX) {
                        return bad("reps must be between 1 and 2^32-1");
                    }
                    cfg.reps = n as u32;
                }
                "seed" => cfg.seed = n,
                other => return bad(&format!("unknown key {other:?}")),
            }
        }
        Ok(cfg)
    }
}

/// Which execution mode [`crate::Simulator::run`] uses: exact cycle
/// simulation of every instruction, or sampled estimation from
/// representative intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// Cycle-simulate everything (the engines' bit-identical model).
    #[default]
    Exact,
    /// Estimate cycle-level metrics from representative intervals.
    Sampled(SampleConfig),
}

impl SimMode {
    /// Short stable name for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimMode::Exact => "exact",
            SimMode::Sampled(_) => "sampled",
        }
    }

    /// True when this mode estimates rather than measures.
    #[must_use]
    pub fn is_sampled(self) -> bool {
        matches!(self, SimMode::Sampled(_))
    }
}

/// Summary of how a sampled run covered the program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Number of profiled intervals.
    pub intervals: u64,
    /// Number of (non-empty) clusters / simulated representatives.
    pub clusters: u64,
    /// Retired instructions actually cycle-simulated.
    pub sampled_insts: u64,
    /// Total retired instructions in the program.
    pub total_insts: u64,
}

impl SampleStats {
    /// Fraction of retired instructions that were cycle-simulated.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_insts == 0 {
            1.0
        } else {
            self.sampled_insts as f64 / self.total_insts as f64
        }
    }
}

/// A reusable sampling plan for one (program, machine, sample) triple:
/// each representative's replayed timing metrics, cluster weights, and
/// the exact functional outcome. A few kilobytes — the expensive state
/// (checkpoints, warm hierarchy) lives only during construction.
#[derive(Debug)]
struct SamplePlan {
    /// Interval-local timing metrics per representative, replayed once
    /// at plan-build time on exact warm state, in interval order.
    rep_metrics: Vec<SimMetrics>,
    /// Per representative: retired instructions of the replayed
    /// interval itself (the extrapolation denominator).
    rep_insts: Vec<u64>,
    /// Per representative: total retired instructions of the stratum it
    /// stands for (the extrapolation numerator; strata partition the
    /// execution, so these sum to the total).
    stratum_insts: Vec<u64>,
    /// Exact dynamic instruction counts.
    counts: InstCounts,
    /// Exact final-memory checksum.
    checksum: u64,
    /// Coverage summary.
    stats: SampleStats,
    /// Approximate heap footprint, for cache accounting.
    bytes: usize,
}

/// Builds a plan: profile, cluster, warm-and-replay.
fn build_plan(
    program: &Program,
    config: &SimConfig,
    sample: SampleConfig,
) -> Result<SamplePlan, ExecError> {
    let prof = profile::profile(program, sample.interval, config.fuel)?;
    let clustering = kmeans::cluster(
        &prof.bbvs,
        &prof.insts_per,
        sample.k as usize,
        sample.seed,
    );

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); clustering.k()];
    for (i, &c) in clustering.assignment.iter().enumerate() {
        members[c].push(i);
    }

    // Stratified representative selection: each cluster's members
    // (kept in interval order) are split into up to `reps` contiguous
    // strata; the *center* member of each stratum is replayed and
    // weighted by its own stratum's instructions. A cluster's BBVs
    // being near-identical does not make its *timing* uniform — cache
    // warm-up drifts across a single hot loop — and per-stratum
    // weighting averages that drift without over-representing the cold
    // endpoints the way evenly-spaced pooling would.
    let mut picked: Vec<(usize, u64, u64)> = Vec::new(); // (interval, stratum insts, own insts)
    let mut sampled_insts = 0u64;
    for ms in &members {
        let m = ms.len();
        let r = (sample.reps as usize).clamp(1, m);
        for j in 0..r {
            let lo = j * m / r;
            let hi = ((j + 1) * m / r).max(lo + 1);
            let stratum = &ms[lo..hi];
            let stratum_insts: u64 = stratum.iter().map(|&iv| prof.insts_per[iv]).sum();
            let pick = stratum[stratum.len() / 2];
            picked.push((pick, stratum_insts, prof.insts_per[pick]));
            sampled_insts += prof.insts_per[pick];
        }
    }
    picked.sort_unstable();
    let intervals: Vec<usize> = picked.iter().map(|&(iv, ..)| iv).collect();
    let stratum_insts: Vec<u64> = picked.iter().map(|&(_, si, _)| si).collect();
    let rep_insts: Vec<u64> = picked.iter().map(|&(.., oi)| oi).collect();

    let rep_metrics = profile::warm_replay(program, config, &prof, &intervals)?;

    let stats = SampleStats {
        intervals: prof.bbvs.len() as u64,
        clusters: clustering.k() as u64,
        sampled_insts,
        total_insts: prof.total_insts,
    };
    let bytes = rep_metrics.len() * std::mem::size_of::<SimMetrics>() + 4096;
    Ok(SamplePlan {
        rep_metrics,
        rep_insts,
        stratum_insts,
        counts: prof.counts,
        checksum: prof.checksum,
        stats,
        bytes,
    })
}

/// Process-wide plan cache: FIFO-evicted once the approximate footprint
/// exceeds the cap. Plans are immutable once built, so entries are
/// plain `Arc`s shared across concurrent runs.
struct PlanCache {
    map: HashMap<u64, Arc<SamplePlan>>,
    order: VecDeque<u64>,
    bytes: usize,
}

/// Cap on the plan cache's approximate footprint. Plans are a few
/// kilobytes each, so even many full standard-grid sweeps (17 kernels ×
/// 15 configurations per sweep) stay resident; evicting mid-sweep would
/// silently rebuild plans every pass and forfeit the sampling speedup.
const PLAN_CACHE_CAP: usize = 64 << 20;

static PLAN_CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();

/// FNV-1a over the program text and both configs: the plan identity.
fn plan_key(program: &Program, config: &SimConfig, sample: SampleConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&program.to_string());
    eat(&format!("{config:?}"));
    eat(&format!("{sample:?}"));
    h
}

/// Fetches or builds the plan for this triple.
fn plan_for(
    program: &Program,
    config: &SimConfig,
    sample: SampleConfig,
) -> Result<Arc<SamplePlan>, ExecError> {
    let key = plan_key(program, config, sample);
    let cache = PLAN_CACHE.get_or_init(|| {
        Mutex::new(PlanCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
        })
    });
    if let Some(plan) = cache.lock().unwrap().map.get(&key) {
        return Ok(Arc::clone(plan));
    }
    // Build outside the cache lock so distinct cells build concurrently;
    // a racing duplicate build of the same key loses and is dropped.
    let plan = build_plan(program, config, sample)?;
    let mut c = cache.lock().unwrap();
    if let Some(existing) = c.map.get(&key) {
        return Ok(Arc::clone(existing));
    }
    c.bytes += plan.bytes;
    c.order.push_back(key);
    let entry = Arc::new(plan);
    c.map.insert(key, Arc::clone(&entry));
    while c.bytes > PLAN_CACHE_CAP && c.order.len() > 1 {
        if let Some(old) = c.order.pop_front() {
            if old == key {
                c.order.push_back(old);
                continue;
            }
            if let Some(p) = c.map.remove(&old) {
                c.bytes -= p.bytes;
            }
        }
    }
    Ok(entry)
}

/// Rounds an estimate, surfacing non-finite values as an error so the
/// fuzzer can report estimator bugs instead of silently writing zeros.
fn est(x: f64, metric: &'static str) -> Result<u64, ExecError> {
    if x.is_finite() {
        Ok(x.round() as u64)
    } else {
        Err(ExecError::NonFiniteEstimate { metric })
    }
}

/// Runs a sampled simulation: extrapolate cluster-weighted metrics from
/// the plan's replayed representatives.
///
/// # Errors
///
/// Propagates the functional interpreter's errors from plan
/// construction (out of fuel, wild store) and reports
/// [`ExecError::NonFiniteEstimate`] if extrapolation goes non-finite.
pub(crate) fn run_sampled(
    program: &Program,
    config: SimConfig,
    sample: SampleConfig,
) -> Result<SimResult, ExecError> {
    let plan = plan_for(program, &config, sample)?;

    // f64 accumulators, filled in fixed (interval) order so repeated
    // runs are bit-identical.
    let mut cycles = 0.0;
    let mut load_interlock = 0.0;
    let mut fixed_interlock = 0.0;
    let mut branch_penalty = 0.0;
    let mut store_stall = 0.0;
    let mut fetch_stall = 0.0;
    let mut tlb_stall = 0.0;
    let mut mem_acc = [0.0f64; 13];

    for i in 0..plan.rep_metrics.len() {
        let dm = &plan.rep_metrics[i];
        let scale = plan.stratum_insts[i] as f64 / plan.rep_insts[i].max(1) as f64;
        cycles += dm.cycles as f64 * scale;
        load_interlock += dm.load_interlock as f64 * scale;
        fixed_interlock += dm.fixed_interlock as f64 * scale;
        branch_penalty += dm.branch_penalty as f64 * scale;
        store_stall += dm.store_stall as f64 * scale;
        fetch_stall += dm.fetch_stall as f64 * scale;
        tlb_stall += dm.tlb_stall as f64 * scale;
        let ms = dm.mem;
        for (acc, v) in mem_acc.iter_mut().zip([
            ms.l1d_hits,
            ms.l2_hits,
            ms.l3_hits,
            ms.mem_reads,
            ms.mshr_merges,
            ms.mshr_stall_cycles,
            ms.dtb_misses,
            ms.itb_misses,
            ms.icache_misses,
            ms.stores,
            ms.wb_stall_cycles,
            ms.prefetches,
            ms.prefetch_useful,
        ]) {
            *acc += v as f64 * scale;
        }
    }

    let metrics = SimMetrics {
        cycles: est(cycles, "cycles")?,
        insts: plan.counts,
        load_interlock: est(load_interlock, "load_interlock")?,
        fixed_interlock: est(fixed_interlock, "fixed_interlock")?,
        branch_penalty: est(branch_penalty, "branch_penalty")?,
        store_stall: est(store_stall, "store_stall")?,
        fetch_stall: est(fetch_stall, "fetch_stall")?,
        tlb_stall: est(tlb_stall, "tlb_stall")?,
        mem: MemStats {
            l1d_hits: est(mem_acc[0], "l1d_hits")?,
            l2_hits: est(mem_acc[1], "l2_hits")?,
            l3_hits: est(mem_acc[2], "l3_hits")?,
            mem_reads: est(mem_acc[3], "mem_reads")?,
            mshr_merges: est(mem_acc[4], "mshr_merges")?,
            mshr_stall_cycles: est(mem_acc[5], "mshr_stall_cycles")?,
            dtb_misses: est(mem_acc[6], "dtb_misses")?,
            itb_misses: est(mem_acc[7], "itb_misses")?,
            icache_misses: est(mem_acc[8], "icache_misses")?,
            stores: est(mem_acc[9], "stores")?,
            wb_stall_cycles: est(mem_acc[10], "wb_stall_cycles")?,
            prefetches: est(mem_acc[11], "prefetches")?,
            prefetch_useful: est(mem_acc[12], "prefetch_useful")?,
        },
    };
    Ok(SimResult {
        metrics,
        checksum: plan.checksum,
        sample: Some(plan.stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_aliases_parse() {
        let d: SampleConfig = "1".parse().unwrap();
        assert_eq!(d, SampleConfig::default());
        for alias in ["on", "true", "default"] {
            assert_eq!(alias.parse::<SampleConfig>().unwrap(), d);
        }
        let c: SampleConfig = "k=4,interval=500,reps=2,seed=0x2a".parse().unwrap();
        assert_eq!(
            c,
            SampleConfig {
                interval: 500,
                k: 4,
                reps: 2,
                seed: 42
            }
        );
        let again: SampleConfig = c.to_string().parse().unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn bad_specs_list_the_valid_format() {
        for bad in ["", "k=0", "interval=0", "banana", "k=three", "pace=9"] {
            let err = bad.parse::<SampleConfig>().unwrap_err();
            assert!(err.contains("valid:"), "{err}");
            assert!(err.contains("k=<clusters"), "{err}");
        }
    }

    #[test]
    fn mode_labels() {
        assert_eq!(SimMode::Exact.label(), "exact");
        assert_eq!(SimMode::Sampled(SampleConfig::default()).label(), "sampled");
        assert!(!SimMode::Exact.is_sampled());
        assert!(SimMode::default() == SimMode::Exact);
    }

    #[test]
    fn coverage_is_sane() {
        let s = SampleStats {
            intervals: 10,
            clusters: 4,
            sampled_insts: 400,
            total_insts: 1000,
        };
        assert!((s.coverage() - 0.4).abs() < 1e-12);
        assert_eq!(SampleStats::default().coverage(), 1.0);
    }
}
