//! Std-only seeded k-means over basic-block vectors.
//!
//! The SimPoint recipe (Sherwood et al., ASPLOS 2002) adapted to this
//! repo's determinism rules: SplitMix64-seeded k-means++ initialisation,
//! optional random projection of high-dimensional BBVs, Lloyd iterations
//! with *deterministic tie-breaks* (lowest index wins everywhere), and
//! one representative interval per non-empty cluster. Equal inputs and
//! seeds produce bit-identical clusterings on every platform and from
//! any number of threads — the sampled simulator's reproducibility
//! hangs off this property.

use bsched_util::Prng;

/// Dimensionality BBVs are randomly projected down to before
/// clustering, when they are wider than this (SimPoint uses 15).
pub const PROJECT_DIM: usize = 16;

/// Upper bound on Lloyd iterations; convergence is typical long before.
const MAX_ITERS: usize = 64;

/// The outcome of clustering `n` intervals into at most `k` phases.
///
/// Empty clusters are dropped and the rest re-indexed, so every cluster
/// in the result has at least one member and exactly one representative.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// For each interval, the index of its cluster (`0..k()`).
    pub assignment: Vec<usize>,
    /// For each cluster, the index of its representative interval —
    /// the member closest to the centroid (lowest index on ties).
    pub reps: Vec<usize>,
    /// For each cluster, its share of retired instructions in `[0, 1]`.
    pub weights: Vec<f64>,
}

impl Clustering {
    /// Number of (non-empty) clusters.
    #[must_use]
    pub fn k(&self) -> usize {
        self.reps.len()
    }
}

/// Clusters per-interval BBVs into at most `k` phases.
///
/// `sizes[i]` is the number of retired instructions in interval `i`;
/// cluster weights are instruction-weighted. When `k >= bbvs.len()` the
/// clustering degrades gracefully to one cluster per interval.
///
/// # Panics
///
/// Panics when `bbvs` is empty, `k == 0`, or `sizes` has a different
/// length than `bbvs` — the interval profiler never produces those.
#[must_use]
pub fn cluster(bbvs: &[Vec<f64>], sizes: &[u64], k: usize, seed: u64) -> Clustering {
    assert!(!bbvs.is_empty(), "cannot cluster zero intervals");
    assert!(k >= 1, "cannot cluster into zero clusters");
    assert_eq!(bbvs.len(), sizes.len());
    let n = bbvs.len();

    if k >= n {
        // One cluster per interval: every interval represents itself.
        let ids: Vec<usize> = (0..n).collect();
        return finish(ids.clone(), ids, sizes);
    }

    let points = project(bbvs, seed);
    let mut rng = Prng::new(seed ^ 0x6b6d_6561_6e73); // "kmeans"
    let mut centers = init_plus_plus(&points, k, &mut rng);
    let mut assignment = vec![0usize; n];

    for _ in 0..MAX_ITERS {
        // Assignment step: nearest center, lowest index on ties.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = dist2(p, center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }

        // Update step: centroid means; an empty cluster steals the point
        // farthest from its current center (lowest index on ties).
        let mut counts = vec![0usize; k];
        let mut sums = vec![vec![0.0; points[0].len()]; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = farthest_point(&points, &centers, &assignment, &counts);
                counts[assignment[far]] -= 1;
                assignment[far] = c;
                counts[c] += 1;
                centers[c] = points[far].clone();
                changed = true;
            } else {
                for (dst, &s) in centers[c].iter_mut().zip(&sums[c]) {
                    *dst = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Representative: the member closest to its centroid.
    let mut reps = vec![usize::MAX; k];
    let mut rep_d = vec![f64::INFINITY; k];
    for (i, p) in points.iter().enumerate() {
        let c = assignment[i];
        let d = dist2(p, &centers[c]);
        if d < rep_d[c] {
            rep_d[c] = d;
            reps[c] = i;
        }
    }

    // Drop empty clusters (possible when duplicate points collapse) and
    // re-index densely.
    let mut remap = vec![usize::MAX; k];
    let mut dense_reps = Vec::new();
    for (c, &r) in reps.iter().enumerate() {
        if r != usize::MAX {
            remap[c] = dense_reps.len();
            dense_reps.push(r);
        }
    }
    let assignment: Vec<usize> = assignment.into_iter().map(|c| remap[c]).collect();
    finish(assignment, dense_reps, sizes)
}

/// Builds the final [`Clustering`] with instruction-weighted weights.
fn finish(assignment: Vec<usize>, reps: Vec<usize>, sizes: &[u64]) -> Clustering {
    let mut cluster_insts = vec![0u64; reps.len()];
    for (i, &c) in assignment.iter().enumerate() {
        cluster_insts[c] += sizes[i];
    }
    let total: u64 = cluster_insts.iter().sum();
    // A program can retire zero instructions (a bare `ret`); weight its
    // single interval fully rather than dividing by zero.
    let weights = if total == 0 {
        let w = 1.0 / reps.len() as f64;
        vec![w; reps.len()]
    } else {
        cluster_insts
            .iter()
            .map(|&ci| ci as f64 / total as f64)
            .collect()
    };
    Clustering {
        assignment,
        reps,
        weights,
    }
}

/// Random ±1 projection to [`PROJECT_DIM`] dimensions (Achlioptas),
/// applied only when the BBVs are wider than that. The projection
/// matrix is derived from `seed`, so it is stable across runs.
fn project(bbvs: &[Vec<f64>], seed: u64) -> Vec<Vec<f64>> {
    let dim = bbvs[0].len();
    if dim <= PROJECT_DIM {
        return bbvs.to_vec();
    }
    let mut rng = Prng::new(seed ^ 0x7072_6f6a); // "proj"
    let signs: Vec<f64> = (0..dim * PROJECT_DIM)
        .map(|_| if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 })
        .collect();
    bbvs.iter()
        .map(|v| {
            (0..PROJECT_DIM)
                .map(|j| {
                    v.iter()
                        .enumerate()
                        .map(|(i, &x)| x * signs[i * PROJECT_DIM + j])
                        .sum()
                })
                .collect()
        })
        .collect()
}

/// Seeded k-means++ initialisation: first center uniform, each next
/// center D²-sampled; zero total distance (all points covered) falls
/// back to the lowest-index uncovered point.
fn init_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut Prng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centers = Vec::with_capacity(k);
    let mut chosen = vec![false; n];
    let first = rng.range_u64(0, n as u64) as usize;
    chosen[first] = true;
    centers.push(points[first].clone());

    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total > 0.0 {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        } else {
            // All points coincide with a center; take the lowest-index
            // point not already chosen (duplicates collapse later).
            (0..n).find(|&i| !chosen[i]).unwrap_or(0)
        };
        chosen[next] = true;
        let c = points[next].clone();
        for (i, p) in points.iter().enumerate() {
            let d = dist2(p, &c);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        centers.push(c);
    }
    centers
}

/// The point farthest from its assigned center among clusters that can
/// spare a member; lowest index on ties.
fn farthest_point(
    points: &[Vec<f64>],
    centers: &[Vec<f64>],
    assignment: &[usize],
    counts: &[usize],
) -> usize {
    let mut far = 0usize;
    let mut far_d = -1.0;
    for (i, p) in points.iter().enumerate() {
        if counts[assignment[i]] <= 1 {
            continue;
        }
        let d = dist2(p, &centers[assignment[i]]);
        if d > far_d {
            far_d = d;
            far = i;
        }
    }
    far
}

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbv(parts: &[f64]) -> Vec<f64> {
        let total: f64 = parts.iter().sum();
        parts.iter().map(|&p| p / total).collect()
    }

    #[test]
    fn two_obvious_phases_separate() {
        // Six intervals: three dominated by block 0, three by block 2.
        let bbvs = vec![
            bbv(&[9.0, 1.0, 0.0]),
            bbv(&[0.0, 1.0, 9.0]),
            bbv(&[8.0, 2.0, 0.0]),
            bbv(&[0.0, 2.0, 8.0]),
            bbv(&[9.0, 0.0, 1.0]),
            bbv(&[1.0, 0.0, 9.0]),
        ];
        let sizes = vec![100; 6];
        let c = cluster(&bbvs, &sizes, 2, 42);
        assert_eq!(c.k(), 2);
        assert_eq!(c.assignment[0], c.assignment[2]);
        assert_eq!(c.assignment[0], c.assignment[4]);
        assert_eq!(c.assignment[1], c.assignment[3]);
        assert_eq!(c.assignment[1], c.assignment[5]);
        assert_ne!(c.assignment[0], c.assignment[1]);
        // The representative of each cluster is a member of it.
        for (cl, &rep) in c.reps.iter().enumerate() {
            assert_eq!(c.assignment[rep], cl);
        }
    }

    #[test]
    fn k_at_least_n_gives_one_cluster_per_interval() {
        let bbvs = vec![bbv(&[1.0, 2.0]), bbv(&[2.0, 1.0])];
        for k in [2, 3, 100] {
            let c = cluster(&bbvs, &[10, 30], k, 7);
            assert_eq!(c.k(), 2);
            assert_eq!(c.assignment, vec![0, 1]);
            assert_eq!(c.reps, vec![0, 1]);
            assert_eq!(c.weights, vec![0.25, 0.75]);
        }
    }

    #[test]
    fn weights_are_instruction_shares() {
        let bbvs = vec![bbv(&[1.0, 0.0]), bbv(&[1.0, 0.1]), bbv(&[0.0, 1.0])];
        let c = cluster(&bbvs, &[300, 100, 600], 2, 1);
        let sum: f64 = c.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "{sum}");
        assert!(c.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn zero_size_intervals_do_not_divide_by_zero() {
        let c = cluster(&[vec![1.0]], &[0], 1, 0);
        assert_eq!(c.weights, vec![1.0]);
    }

    #[test]
    fn projection_is_deterministic_and_applied_when_wide() {
        let wide: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..40).map(|j| ((i * 7 + j) % 5) as f64).collect())
            .collect();
        let a = project(&wide, 9);
        let b = project(&wide, 9);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), PROJECT_DIM);
        let narrow = project(&[vec![1.0, 2.0]], 9);
        assert_eq!(narrow[0].len(), 2);
    }
}
