//! The execution-driven timing machine.
//!
//! This module holds the engine-agnostic [`Simulator`] front end, the
//! machine-model state shared by both engines (scoreboard, per-site
//! trace attribution, code layout), and the one-instruction-at-a-time
//! *interpreting* engine. The block-compiled engine lives in
//! [`crate::block`] and must reproduce the interpreter bit for bit.

use crate::branch::BranchPredictor;
use crate::config::SimConfig;
use crate::engine::SimEngine;
use crate::metrics::SimMetrics;
use bsched_ir::{
    interp::RegFile, BlockId, ExecError, Function, MemImage, Op, Program, Terminator, Value,
};
use bsched_mem::Hierarchy;

/// Result of a simulated run: timing metrics plus the functional outcome
/// (memory checksum) used to cross-check against the reference
/// interpreter.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Timing and instruction-count metrics.
    pub metrics: SimMetrics,
    /// FNV-1a hash of the final memory image.
    pub checksum: u64,
    /// Sampling summary when the run was estimated under
    /// [`crate::SimMode::Sampled`]; `None` for exact runs.
    pub sample: Option<crate::sample::SampleStats>,
}

/// Sentinel "not produced by a load" site id.
pub(crate) const NO_SITE: u32 = u32::MAX;

/// Base address of the code region: 4 bytes per instruction, terminator
/// included. Code lives far above data so instruction fetches and data
/// accesses never share cache lines.
pub(crate) const CODE_BASE: u64 = 1 << 32;

/// Computes the code layout shared by both engines: the base address of
/// every block (in [`BlockId`] index order) and the end-of-code address.
/// The static *site id* of the instruction at `pc` is
/// `(pc - CODE_BASE) / 4`.
pub(crate) fn code_layout(func: &Function) -> (Vec<u64>, u64) {
    let mut block_addr = Vec::with_capacity(func.blocks().len());
    let mut pc = CODE_BASE;
    for (_, b) in func.iter_blocks() {
        block_addr.push(pc);
        pc += 4 * (b.len() as u64 + 1);
    }
    (block_addr, pc)
}

/// Per-register scoreboard: when each register's value becomes
/// available, and — for interlock attribution — the static code site
/// (`(pc - CODE_BASE) / 4`) of its most recent producing load, or
/// [`NO_SITE`] for non-load producers.
#[derive(Debug)]
pub(crate) struct Scoreboard {
    ready_int: Vec<u64>,
    ready_float: Vec<u64>,
    load_site_int: Vec<u32>,
    load_site_float: Vec<u32>,
}

impl Scoreboard {
    pub(crate) fn new(func: &Function) -> Self {
        use bsched_ir::RegClass;
        let ni = bsched_ir::Reg::NUM_PHYS as usize + func.vreg_count(RegClass::Int) as usize;
        let nf = bsched_ir::Reg::NUM_PHYS as usize + func.vreg_count(RegClass::Float) as usize;
        Scoreboard {
            ready_int: vec![0; ni],
            ready_float: vec![0; nf],
            load_site_int: vec![NO_SITE; ni],
            load_site_float: vec![NO_SITE; nf],
        }
    }

    pub(crate) fn ready(&self, r: bsched_ir::Reg) -> (u64, u32) {
        let s = RegFile::slot(r);
        match r.class() {
            bsched_ir::RegClass::Int => (self.ready_int[s], self.load_site_int[s]),
            bsched_ir::RegClass::Float => (self.ready_float[s], self.load_site_float[s]),
        }
    }

    pub(crate) fn set(&mut self, r: bsched_ir::Reg, at: u64, load_site: u32) {
        let s = RegFile::slot(r);
        match r.class() {
            bsched_ir::RegClass::Int => {
                self.ready_int[s] = at;
                self.load_site_int[s] = load_site;
            }
            bsched_ir::RegClass::Float => {
                self.ready_float[s] = at;
                self.load_site_float[s] = load_site;
            }
        }
    }
}

/// Tracing-only per-static-load-site attribution, allocated only when
/// `bsched_trace::enabled()`. The interlock and MSHR columns are
/// incremented at exactly the three points that bump the aggregate
/// `load_interlock` counter, so their sum reproduces it exactly — the
/// conservation property the test suite pins.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SiteStat {
    pub(crate) issued: u64,
    pub(crate) interlock: u64,
    pub(crate) mshr: u64,
    pub(crate) hits: [u64; 4], // L1, L2, L3, memory
}

impl SiteStat {
    fn any(&self) -> bool {
        self.issued > 0 || self.interlock > 0 || self.mshr > 0
    }
}

/// Emits one `sim.load_site` event per static site with any load
/// activity: where it lives (block), how often it issued, which memory
/// levels answered, and how many load-interlock cycles it was blamed
/// for (operand interlocks + MSHR stalls). Shared by both engines so
/// per-site attribution is byte-identical across them.
pub(crate) fn flush_site_events(program_name: &str, sites: &[SiteStat], block_addr: &[u64]) {
    for (site, st) in sites.iter().enumerate() {
        if !st.any() {
            continue;
        }
        let addr = CODE_BASE + 4 * site as u64;
        let block = block_addr.partition_point(|&b| b <= addr).saturating_sub(1);
        bsched_trace::instant(
            bsched_trace::points::SIM_LOAD_SITE,
            program_name,
            &[
                ("site", site as u64),
                ("block", block as u64),
                ("issued", st.issued),
                ("interlock", st.interlock),
                ("mshr_stall", st.mshr),
                ("l1", st.hits[0]),
                ("l2", st.hits[1]),
                ("l3", st.hits[2]),
                ("mem", st.hits[3]),
            ],
        );
    }
}

/// The simulator. Build with [`Simulator::for_machine`], pick an engine
/// with [`Simulator::with_engine`], consume with [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    config: SimConfig,
    engine: SimEngine,
    mode: crate::sample::SimMode,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for `program` on the given machine, running
    /// on the default engine ([`SimEngine::default`]) in exact mode.
    #[must_use]
    pub fn for_machine(program: &'p Program, machine: &crate::machines::MachineSpec) -> Self {
        Simulator {
            program,
            config: machine.config(),
            engine: SimEngine::default(),
            mode: crate::sample::SimMode::default(),
        }
    }

    /// Creates a simulator from a raw knob struct, bypassing machine
    /// validation.
    #[deprecated(
        since = "0.5.0",
        note = "describe the machine first: Simulator::for_machine(p, \
                &MachineSpec::custom(config)) — or name a registered one"
    )]
    #[must_use]
    pub fn with_config(program: &'p Program, config: SimConfig) -> Self {
        Simulator {
            program,
            config,
            engine: SimEngine::default(),
            mode: crate::sample::SimMode::default(),
        }
    }

    /// Creates a simulator pinned to the pre-0.4 interpreting engine.
    ///
    /// Bypassed twice over: use [`Simulator::for_machine`] (which
    /// follows the default engine) and [`Simulator::with_engine`] to
    /// pick one explicitly. Both engines produce bit-identical results,
    /// so migrating never changes metrics or checksums.
    #[deprecated(
        since = "0.4.0",
        note = "use Simulator::for_machine(..) [+ .with_engine(..)]; \
                this shim pins SimEngine::Interpret"
    )]
    #[must_use]
    pub fn new(program: &'p Program, config: SimConfig) -> Self {
        #[allow(deprecated)]
        Simulator::with_config(program, config).with_engine(SimEngine::Interpret)
    }

    /// Selects the execution engine. Metrics-invariant: both engines
    /// produce bit-identical [`SimResult`]s.
    #[must_use]
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine this simulator will run on.
    #[must_use]
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// Selects exact or sampled execution. Unlike the engine axis,
    /// sampled mode is *not* metrics-invariant: it estimates timing
    /// metrics from representative intervals (the functional outcome —
    /// instruction counts and checksum — stays exact).
    #[must_use]
    pub fn with_mode(mut self, mode: crate::sample::SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// The execution mode this simulator will run in.
    #[must_use]
    pub fn mode(&self) -> crate::sample::SimMode {
        self.mode
    }

    /// Runs the program to completion on the timing model.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::OutOfFuel`] if the configured instruction
    /// budget is exhausted and [`ExecError::WildStore`] on a store outside
    /// the memory image.
    pub fn run(&self) -> Result<SimResult, ExecError> {
        match self.mode {
            crate::sample::SimMode::Exact => match self.engine {
                SimEngine::Interpret => self.run_interpret(),
                SimEngine::BlockCompiled => crate::block::run(self.program, self.config),
            },
            crate::sample::SimMode::Sampled(sample) => {
                crate::sample::run_sampled(self.program, self.config, sample)
            }
        }
    }

    /// The interpreting engine: decode, evaluate, and charge every
    /// instruction on every visit.
    fn run_interpret(&self) -> Result<SimResult, ExecError> {
        let func = self.program.main();
        let mut regs = RegFile::new(func);
        let mut mem = MemImage::new(self.program);
        let bases = mem.region_bases.clone();
        let mut board = Scoreboard::new(func);
        let mut hier = Hierarchy::new(self.config.mem);
        let mut pred = BranchPredictor::new(&self.config.branch);
        let mut m = SimMetrics::default();

        let (block_addr, code_end) = code_layout(func);

        // Load-interlock attribution (tracing only): one row per static
        // code slot, flushed as `sim.load_site` events at `Ret`.
        let tracing = bsched_trace::enabled();
        let mut sites: Vec<SiteStat> = if tracing {
            vec![SiteStat::default(); ((code_end - CODE_BASE) / 4) as usize]
        } else {
            Vec::new()
        };
        let mut run_span = Some(
            bsched_trace::span(bsched_trace::points::SIM_RUN)
                .label_with(|| self.program.name().to_string()),
        );

        let mut now: u64 = 0;
        let mut executed: u64 = 0;
        let mut cur = func.entry();
        // Issue-group state for multi-issue configurations. Any stall
        // advances `now`, opening a fresh group.
        let width = self.config.issue_width.max(1);
        let ports = self.config.mem_ports.max(1);
        let mut slot: u32 = 0;
        let mut mem_slot: u32 = 0;
        let fixed_latency = |op: Op| -> u32 {
            if self.config.uniform_fixed_latency {
                1
            } else {
                op.latency()
            }
        };

        loop {
            let block = func.block(cur);
            let base_pc = block_addr[cur.index()];
            for (k, inst) in block.insts.iter().enumerate() {
                executed += 1;
                if executed > self.config.fuel {
                    return Err(ExecError::OutOfFuel {
                        fuel: self.config.fuel,
                    });
                }
                // 1. Fetch.
                if self.config.model_ifetch {
                    let f = hier.inst_fetch(base_pc + 4 * k as u64, now);
                    if f.ready_at > now {
                        m.fetch_stall += f.ready_at - now;
                        now = f.ready_at;
                        slot = 0;
                        mem_slot = 0;
                    }
                }
                // 2. Structural issue limits: group full, or out of
                // memory ports — advance to the next cycle first so the
                // operand check below sees the true issue cycle.
                if slot >= width || (inst.op.is_memory() && mem_slot >= ports) {
                    now += 1;
                    slot = 0;
                    mem_slot = 0;
                }
                // 2b. Operand interlock.
                let mut op_ready = now;
                let mut blame_site = NO_SITE;
                for &s in inst.srcs() {
                    let (t, site) = board.ready(s);
                    if t > op_ready || (t == op_ready && site != NO_SITE && t > now) {
                        op_ready = t;
                        blame_site = site;
                    }
                }
                if op_ready > now {
                    let stall = op_ready - now;
                    if blame_site != NO_SITE {
                        m.load_interlock += stall;
                        if tracing {
                            sites[blame_site as usize].interlock += stall;
                        }
                    } else {
                        m.fixed_interlock += stall;
                    }
                    now = op_ready;
                    slot = 0;
                    mem_slot = 0;
                }
                // 3. Execute.
                m.insts.record(inst);
                match inst.op {
                    Op::Ld => {
                        let site = ((base_pc - CODE_BASE) / 4) as u32 + k as u32;
                        let base = regs.get(inst.mem_base()).as_int();
                        let addr = base.wrapping_add(inst.mem_disp()) as u64;
                        let stall_before = hier.stats().mshr_stall_cycles;
                        let a = hier.data_read(addr, now);
                        let mshr_stall = hier.stats().mshr_stall_cycles - stall_before;
                        let issue_delay = a.issue_at - now;
                        m.load_interlock += mshr_stall;
                        m.tlb_stall += issue_delay - mshr_stall;
                        if tracing {
                            let st = &mut sites[site as usize];
                            st.issued += 1;
                            st.mshr += mshr_stall;
                            st.hits[a.level as usize] += 1;
                        }
                        if a.issue_at > now {
                            now = a.issue_at;
                            slot = 0;
                            mem_slot = 0;
                        }
                        let dst = inst.dst.expect("load has a destination");
                        regs.set(dst, Value::from_bits(dst.class(), mem.load(addr)));
                        board.set(dst, a.ready_at, site);
                    }
                    Op::St => {
                        let base = regs.get(inst.mem_base()).as_int();
                        let addr = base.wrapping_add(inst.mem_disp()) as u64;
                        let wb_before = hier.stats().wb_stall_cycles;
                        let a = hier.data_write(addr, now);
                        let wb_stall = hier.stats().wb_stall_cycles - wb_before;
                        m.store_stall += wb_stall;
                        m.tlb_stall += (a.issue_at - now) - wb_stall;
                        if a.issue_at > now {
                            now = a.issue_at;
                            slot = 0;
                            mem_slot = 0;
                        }
                        mem.store(addr, regs.get(inst.srcs()[0]).to_bits())?;
                    }
                    Op::LdAddr => {
                        let region = inst
                            .mem
                            .and_then(|mm| mm.region)
                            .expect("ldaddr has a region");
                        let dst = inst.dst.expect("ldaddr has a destination");
                        regs.set(dst, Value::Int(bases[region.index() as usize] as i64));
                        board.set(dst, now + u64::from(fixed_latency(inst.op)), NO_SITE);
                    }
                    _ => {
                        let mut vals = [Value::Int(0); 3];
                        for (slot, &s) in vals.iter_mut().zip(inst.srcs()) {
                            *slot = regs.get(s);
                        }
                        let v = bsched_ir::value::eval(
                            inst.op,
                            &vals[..inst.srcs().len()],
                            inst.imm,
                            inst.fimm,
                        );
                        let dst = inst.dst.expect("pure op has a destination");
                        regs.set(dst, v);
                        board.set(dst, now + u64::from(fixed_latency(inst.op)), NO_SITE);
                    }
                }
                // 4. The instruction occupies one slot of the group.
                slot += 1;
                if inst.op.is_memory() {
                    mem_slot += 1;
                }
            }

            // Terminator.
            let term_pc = base_pc + 4 * block.len() as u64;
            if self.config.model_ifetch {
                let f = hier.inst_fetch(term_pc, now);
                if f.ready_at > now {
                    m.fetch_stall += f.ready_at - now;
                    now = f.ready_at;
                }
            }
            // Every terminator path below ends the issue group itself.
            let next: BlockId = match &block.term {
                Terminator::Jmp(t) => {
                    m.insts.jumps += 1;
                    // A control transfer ends the issue group.
                    now += 1;
                    slot = 0;
                    mem_slot = 0;
                    *t
                }
                Terminator::Br {
                    cond,
                    when,
                    taken,
                    fall,
                } => {
                    let (t, site) = board.ready(*cond);
                    if t > now {
                        let stall = t - now;
                        if site != NO_SITE {
                            m.load_interlock += stall;
                            if tracing {
                                sites[site as usize].interlock += stall;
                            }
                        } else {
                            m.fixed_interlock += stall;
                        }
                        now = t;
                    }
                    m.insts.branches += 1;
                    let is_taken = when.holds(regs.get(*cond).as_int());
                    if !pred.predict_and_update(term_pc, is_taken) {
                        m.branch_penalty += u64::from(self.config.branch.mispredict_penalty);
                        now += u64::from(self.config.branch.mispredict_penalty);
                    }
                    // A control transfer ends the issue group.
                    now += 1;
                    slot = 0;
                    mem_slot = 0;
                    if is_taken {
                        *taken
                    } else {
                        *fall
                    }
                }
                Terminator::Ret => {
                    m.cycles = now;
                    m.mem = *hier.stats();
                    if tracing {
                        flush_site_events(self.program.name(), &sites, &block_addr);
                        if let Some(span) = run_span.take() {
                            span.finish(&[
                                ("cycles", m.cycles),
                                ("load_interlock", m.load_interlock),
                            ]);
                        }
                    }
                    return Ok(SimResult {
                        metrics: m,
                        checksum: mem.checksum(),
                        sample: None,
                    });
                }
            };
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{BrCond, FuncBuilder, Interp, Op, Program};

    /// Shorthand: a simulator for an ad-hoc machine description.
    fn sim<'p>(p: &'p Program, config: SimConfig) -> Simulator<'p> {
        Simulator::for_machine(p, &crate::machines::MachineSpec::custom(config))
    }

    /// load; dependent fadd; store — on a cold cache the fadd interlocks.
    fn load_use_program(gap_ops: usize) -> Program {
        let mut p = Program::new("lu");
        let r = p.add_region("a", 4096);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let x = b.load_f(base, 0).with_region(r).emit(&mut b);
        // Independent work between the load and its consumer.
        let mut acc = b.fconst(1.0);
        for _ in 0..gap_ops {
            acc = b.binop(Op::FMul, acc, acc);
        }
        let y = b.binop(Op::FAdd, x, x);
        b.store(y, base, 8).with_region(r).emit(&mut b);
        b.store(acc, base, 16).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        p
    }

    #[test]
    fn cold_load_interlocks_consumer() {
        let p = load_use_program(0);
        let res = sim(&p, SimConfig::default()).run().unwrap();
        assert!(res.metrics.load_interlock >= 40, "{:?}", res.metrics);
    }

    #[test]
    fn independent_work_hides_load_latency() {
        let near = sim(&load_use_program(0), SimConfig::default())
            .run()
            .unwrap();
        let far = sim(&load_use_program(12), SimConfig::default())
            .run()
            .unwrap();
        assert!(
            far.metrics.load_interlock < near.metrics.load_interlock,
            "independent instructions must absorb load latency: {} vs {}",
            far.metrics.load_interlock,
            near.metrics.load_interlock
        );
    }

    #[test]
    fn checksum_matches_functional_interpreter() {
        for gap in [0, 5] {
            let p = load_use_program(gap);
            let sim = sim(&p, SimConfig::default()).run().unwrap();
            let reference = Interp::new(&p).run().unwrap();
            assert_eq!(sim.checksum, reference.checksum);
        }
    }

    /// Eight loads from distinct lines on one page; all are cold misses.
    fn many_miss_program() -> Program {
        let mut p = Program::new("8m");
        let r = p.add_region("a", 4096);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let mut acc = b.fconst(0.0);
        // All eight loads issue back-to-back (a balanced-style schedule),
        // then the consumers run.
        let loads: Vec<_> = (0..8)
            .map(|k| b.load_f(base, k * 64).with_region(r).emit(&mut b))
            .collect();
        for x in loads {
            acc = b.binop(Op::FAdd, acc, x);
        }
        b.store(acc, base, 8).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        p
    }

    #[test]
    fn non_blocking_overlaps_misses_blocking_serialises() {
        let p = many_miss_program();
        let cfg = SimConfig::default().with_ifetch(false);
        let nb = sim(&p, cfg).run().unwrap();
        let blk = sim(&p, cfg.with_mshrs(1)).run().unwrap();
        // 8 cold misses at 50 cycles: blocking pays nearly all of them in
        // sequence; non-blocking overlaps several.
        assert!(
            blk.metrics.cycles > nb.metrics.cycles + 100,
            "blocking cache must serialise memory misses: {} vs {}",
            blk.metrics.cycles,
            nb.metrics.cycles
        );
        assert!(blk.metrics.load_interlock > nb.metrics.load_interlock);
        assert_eq!(nb.checksum, blk.checksum);
    }

    #[test]
    fn loop_with_predictable_branch() {
        // for i in 0..50 { sum += i } — branch predicts well after warmup.
        let mut p = Program::new("loop");
        let out = p.add_region("out", 8);
        let mut b = FuncBuilder::new("main");
        let header = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        let i = b.iconst(0);
        let sum = b.iconst(0);
        let n = b.iconst(50);
        let base = b.load_region_addr(out);
        b.jmp(header);
        b.switch_to(header);
        let c = b.binop(Op::CmpLt, i, n);
        b.br(c, BrCond::Zero, exit, body);
        b.switch_to(body);
        b.push(bsched_ir::Inst::op(Op::Add, sum, &[sum, i]));
        b.push(bsched_ir::Inst::op_imm(Op::Add, i, i, 1));
        b.jmp(header);
        b.switch_to(exit);
        b.store(sum, base, 0).with_region(out).emit(&mut b);
        b.ret();
        p.set_main(b.finish());

        let res = sim(&p, SimConfig::default()).run().unwrap();
        assert_eq!(res.metrics.insts.branches, 51);
        assert_eq!(res.metrics.insts.jumps, 51); // entry jmp + 50 latch jmps
                                                 // Mispredicts only at warmup and the final not-taken: small penalty.
        assert!(res.metrics.branch_penalty <= 4 * 5 + 5);
        let reference = Interp::new(&p).run().unwrap();
        assert_eq!(res.checksum, reference.checksum);
        assert!(res.metrics.cycles > res.metrics.insts.total());
    }

    #[test]
    fn fixed_latency_interlock_attribution() {
        // fdiv feeding a store: the stall is a fixed interlock, not load.
        let mut p = Program::new("div");
        let r = p.add_region("a", 64);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let x = b.fconst(10.0);
        let y = b.fconst(4.0);
        let q = b.binop(Op::FDivD, x, y);
        b.store(q, base, 0).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        let res = sim(&p, SimConfig::default().with_ifetch(false))
            .run()
            .unwrap();
        assert!(res.metrics.fixed_interlock >= 25, "{:?}", res.metrics);
        assert_eq!(res.metrics.load_interlock, 0);
    }

    #[test]
    fn ifetch_off_removes_fetch_stalls() {
        let p = load_use_program(3);
        let on = sim(&p, SimConfig::default()).run().unwrap();
        let off = sim(&p, SimConfig::default().with_ifetch(false))
            .run()
            .unwrap();
        assert!(on.metrics.fetch_stall > 0);
        assert_eq!(off.metrics.fetch_stall, 0);
        assert!(off.metrics.cycles < on.metrics.cycles);
    }

    #[test]
    fn fuel_guard() {
        let mut p = Program::new("spin");
        let mut b = FuncBuilder::new("main");
        let e = b.current_block();
        let _ = b.iconst(0);
        b.jmp(e);
        p.set_main(b.finish());
        let cfg = SimConfig {
            fuel: 10,
            ..Default::default()
        };
        assert!(matches!(
            sim(&p, cfg).run(),
            Err(ExecError::OutOfFuel { fuel: 10 })
        ));
    }
}

#[cfg(test)]
mod multi_issue_tests {
    use super::*;
    use bsched_ir::{FuncBuilder, Op, Program};

    /// Shorthand: a simulator for an ad-hoc machine description.
    fn sim<'p>(p: &'p Program, config: SimConfig) -> Simulator<'p> {
        Simulator::for_machine(p, &crate::machines::MachineSpec::custom(config))
    }


    /// Many independent integer ops: wider issue must shrink cycles.
    fn ilp_program() -> Program {
        let mut p = Program::new("ilp");
        let r = p.add_region("a", 512);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let mut accs = Vec::new();
        for k in 0..8 {
            let x = b.iconst(k);
            let y = b.binop_imm(Op::Add, x, 1);
            let z = b.binop_imm(Op::Add, y, 2);
            accs.push(z);
        }
        let mut total = accs[0];
        for &a in &accs[1..] {
            total = b.binop(Op::Add, total, a);
        }
        b.store(total, base, 0).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        p
    }

    #[test]
    fn wider_issue_is_faster_and_identical_functionally() {
        let p = ilp_program();
        let w1 = sim(&p, SimConfig::default().with_ifetch(false))
            .run()
            .unwrap();
        let w2 = sim(
            &p,
            SimConfig::default().with_ifetch(false).with_issue(2, 1),
        )
        .run()
        .unwrap();
        let w4 = sim(
            &p,
            SimConfig::default().with_ifetch(false).with_issue(4, 2),
        )
        .run()
        .unwrap();
        assert!(w2.metrics.cycles < w1.metrics.cycles);
        assert!(w4.metrics.cycles <= w2.metrics.cycles);
        assert_eq!(w1.checksum, w4.checksum);
        assert_eq!(w1.metrics.insts.total(), w4.metrics.insts.total());
    }

    #[test]
    fn mem_ports_limit_memory_issue() {
        // Sixteen independent stores: with one memory port they take a
        // cycle each; with four ports they pack four to a group.
        let mut p = Program::new("stports");
        let r = p.add_region("a", 4096);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let v = b.fconst(1.0);
        for k in 0..16 {
            b.store(v, base, k * 8).with_region(r).emit(&mut b);
        }
        b.ret();
        p.set_main(b.finish());

        let mut one_port = SimConfig::default().with_ifetch(false).with_issue(4, 2);
        one_port.mem_ports = 1;
        let mut four_ports = one_port;
        four_ports.mem_ports = 4;
        let a = sim(&p, one_port).run().unwrap();
        let b_ = sim(&p, four_ports).run().unwrap();
        assert!(
            b_.metrics.cycles + 8 <= a.metrics.cycles,
            "{} vs {}",
            b_.metrics.cycles,
            a.metrics.cycles
        );
        assert_eq!(a.checksum, b_.checksum);
    }

    #[test]
    fn uniform_latency_removes_fixed_interlocks() {
        // An fdiv chain: with uniform latency there is nothing to wait on.
        let mut p = Program::new("u");
        let r = p.add_region("a", 64);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let x = b.fconst(8.0);
        let y = b.fconst(2.0);
        let q1 = b.binop(Op::FDivD, x, y);
        let q2 = b.binop(Op::FDivD, q1, y);
        b.store(q2, base, 0).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        let real = sim(&p, SimConfig::default().with_ifetch(false))
            .run()
            .unwrap();
        let mut simple_cfg = SimConfig::default();
        simple_cfg = simple_cfg.simple_model_1993();
        let simple = sim(&p, simple_cfg).run().unwrap();
        assert!(real.metrics.fixed_interlock >= 29, "{:?}", real.metrics);
        assert_eq!(simple.metrics.fixed_interlock, 0, "{:?}", simple.metrics);
        assert_eq!(real.checksum, simple.checksum);
    }
}
