//! The engine axis of the simulator API.
//!
//! Both engines implement the *same* machine model and produce
//! bit-identical [`crate::SimMetrics`], per-load-site trace attribution,
//! and memory checksums; they differ only in how fast they get there.
//! Because the choice is metrics-invariant it is deliberately **not**
//! part of `CompileOptions` or any result-cache key — like tracing, it
//! is an execution detail, not an experiment knob.

use std::fmt;
use std::str::FromStr;

/// Which execution engine [`crate::Simulator::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimEngine {
    /// The original one-instruction-at-a-time interpreting engine:
    /// decodes, evaluates, and charges every instruction on every visit.
    /// Retained as the differential reference for the block-compiled
    /// engine.
    Interpret,
    /// The block-compiled engine: pre-decodes each basic block once into
    /// a static cost skeleton (operand slots, latencies, load sites,
    /// icache-line fetch points, instruction-count deltas), caches it by
    /// block identity, and per visit replays only the dynamic parts —
    /// cache/TLB lookups, MSHR occupancy, branch outcomes.
    #[default]
    BlockCompiled,
}

impl SimEngine {
    /// Every engine, in a stable order.
    pub const ALL: [SimEngine; 2] = [SimEngine::Interpret, SimEngine::BlockCompiled];

    /// Short stable name, used by CLI flags, env knobs, and run reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimEngine::Interpret => "interpret",
            SimEngine::BlockCompiled => "block",
        }
    }

    /// The valid spellings, for error messages.
    #[must_use]
    pub fn valid_choices() -> &'static str {
        "interpret, block"
    }

    /// The other engine — handy for differential cross-checks.
    #[must_use]
    pub fn other(self) -> SimEngine {
        match self {
            SimEngine::Interpret => SimEngine::BlockCompiled,
            SimEngine::BlockCompiled => SimEngine::Interpret,
        }
    }
}

impl fmt::Display for SimEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for SimEngine {
    type Err = String;

    /// Parses an engine name as spelled by [`SimEngine::label`]
    /// (`block-compiled` is accepted as an alias for `block`). Error
    /// shape comes from [`bsched_util::spec`], the contract shared with
    /// `--sample=` and `--machine=`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interpret" => Ok(SimEngine::Interpret),
            "block" | "block-compiled" => Ok(SimEngine::BlockCompiled),
            other => Err(bsched_util::spec::unknown(
                "simulation engine",
                other,
                &format!("valid engines: {}", SimEngine::valid_choices()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for engine in SimEngine::ALL {
            assert_eq!(engine.label().parse::<SimEngine>(), Ok(engine));
            assert_eq!(engine.to_string(), engine.label());
        }
        assert_eq!("block-compiled".parse::<SimEngine>(), Ok(SimEngine::BlockCompiled));
    }

    #[test]
    fn unknown_names_list_the_valid_choices() {
        let err = "banana".parse::<SimEngine>().unwrap_err();
        assert!(err.contains("banana"), "{err}");
        assert!(err.contains("interpret") && err.contains("block"), "{err}");
    }

    #[test]
    fn other_flips() {
        for engine in SimEngine::ALL {
            assert_ne!(engine.other(), engine);
            assert_eq!(engine.other().other(), engine);
        }
    }
}
