//! Simulation metrics — the quantities the paper's tables report.

use bsched_ir::{Inst, OpClass};
use bsched_mem::MemStats;

/// Dynamic instruction counts by class (paper §4.3: "long and short
/// integers, long and short floating point operations, loads, stores,
/// branches, and spill and restore instructions").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstCounts {
    /// Single-cycle integer operations.
    pub short_int: u64,
    /// Integer multiplies.
    pub long_int: u64,
    /// Loads (excluding spills' restores).
    pub loads: u64,
    /// Stores (excluding spill stores).
    pub stores: u64,
    /// Pipelined floating-point operations.
    pub short_fp: u64,
    /// Floating-point divides.
    pub long_fp: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Unconditional jumps.
    pub jumps: u64,
    /// Allocator-inserted spill stores and restore loads.
    pub spills: u64,
}

impl InstCounts {
    /// Records one executed instruction.
    pub fn record(&mut self, inst: &Inst) {
        if inst.spill {
            self.spills += 1;
            return;
        }
        match inst.op.class() {
            OpClass::IntAlu => self.short_int += 1,
            OpClass::IntMul => self.long_int += 1,
            OpClass::Load => self.loads += 1,
            OpClass::Store => self.stores += 1,
            OpClass::FpOp => self.short_fp += 1,
            OpClass::FpDiv => self.long_fp += 1,
        }
    }

    /// Accumulates another count set. The block-compiled engine adds a
    /// whole-block delta per visit instead of recording instructions one
    /// at a time.
    pub fn add(&mut self, other: &InstCounts) {
        self.scaled_add(other, 1);
    }

    /// Accumulates `k` copies of another count set: the block-compiled
    /// engine folds each block's static counts times its visit count
    /// once at run exit, which is exactly the per-visit sum (integer
    /// addition is associative and commutative).
    pub fn scaled_add(&mut self, other: &InstCounts, k: u64) {
        self.short_int += k * other.short_int;
        self.long_int += k * other.long_int;
        self.loads += k * other.loads;
        self.stores += k * other.stores;
        self.short_fp += k * other.short_fp;
        self.long_fp += k * other.long_fp;
        self.branches += k * other.branches;
        self.jumps += k * other.jumps;
        self.spills += k * other.spills;
    }

    /// Total dynamic instructions, control transfers included.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.short_int
            + self.long_int
            + self.loads
            + self.stores
            + self.short_fp
            + self.long_fp
            + self.branches
            + self.jumps
            + self.spills
    }
}

/// The full metric set of one simulated run.
///
/// `PartialEq`/`Eq` compare every field bit for bit — the conformance
/// suite uses this to prove the block-compiled engine reproduces the
/// interpreting engine exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Total execution cycles.
    pub cycles: u64,
    /// Dynamic instruction counts.
    pub insts: InstCounts,
    /// Cycles stalled waiting for load results, including structural
    /// stalls for a free MSHR — the paper's *load interlock cycles*.
    pub load_interlock: u64,
    /// Cycles stalled waiting for fixed-latency (non-load) results —
    /// multiplies, FP operations, divides.
    pub fixed_interlock: u64,
    /// Branch misprediction penalty cycles.
    pub branch_penalty: u64,
    /// Cycles stalled for a free write-buffer entry (zero with the
    /// default infinite buffer).
    pub store_stall: u64,
    /// I-cache / ITB fetch stall cycles.
    pub fetch_stall: u64,
    /// Data-TLB refill cycles.
    pub tlb_stall: u64,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
}

impl SimMetrics {
    /// Load interlock cycles as a fraction of total cycles (the paper's
    /// Table 5 right-hand columns).
    #[must_use]
    pub fn load_interlock_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.load_interlock as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        let n = self.insts.total();
        if n == 0 {
            0.0
        } else {
            self.cycles as f64 / n as f64
        }
    }

    /// Speedup of this run relative to `other` (in total cycles):
    /// `other.cycles / self.cycles`.
    #[must_use]
    pub fn speedup_over(&self, other: &SimMetrics) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            other.cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Op, Reg, RegClass};

    #[test]
    fn counts_by_class() {
        let r0 = Reg::virt(RegClass::Int, 0);
        let f0 = Reg::virt(RegClass::Float, 0);
        let mut c = InstCounts::default();
        c.record(&Inst::li(r0, 1));
        c.record(&Inst::op_imm(Op::Mul, r0, r0, 3));
        c.record(&Inst::load(f0, r0, 0));
        c.record(&Inst::store(f0, r0, 0));
        c.record(&Inst::op(Op::FAdd, f0, &[f0, f0]));
        c.record(&Inst::op(Op::FDivD, f0, &[f0, f0]));
        c.record(&Inst::load(f0, r0, 0).as_spill());
        assert_eq!(c.short_int, 1);
        assert_eq!(c.long_int, 1);
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 1);
        assert_eq!(c.short_fp, 1);
        assert_eq!(c.long_fp, 1);
        assert_eq!(c.spills, 1);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn derived_ratios() {
        let mut m = SimMetrics {
            cycles: 200,
            load_interlock: 30,
            ..Default::default()
        };
        m.insts.short_int = 100;
        assert!((m.load_interlock_fraction() - 0.15).abs() < 1e-12);
        assert!((m.cpi() - 2.0).abs() < 1e-12);
        let faster = SimMetrics {
            cycles: 100,
            ..Default::default()
        };
        assert!((faster.speedup_over(&m) - 2.0).abs() < 1e-12);
    }
}
