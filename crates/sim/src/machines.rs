//! `MachineSpec` — first-class machine descriptions and the machine zoo.
//!
//! The paper studies one machine (a single-issue Alpha 21164-like core,
//! §4.3) and names wider-issue processors as future work (§6). This
//! module generalises the simulator-configuration surface from a flat
//! knob struct into a *machine-description API*:
//!
//! * a **named-machine registry** ([`MachineSpec::named`],
//!   [`MachineSpec::registry`]): `alpha21164`, `simple1993`, `wide2`,
//!   `wide4`, `alpha21264`, `blocking21164`;
//! * a **parseable spec grammar** (`FromStr`):
//!   `NAME[+key=value]*`, e.g. `alpha21164+bp=gshare+pf=stride+iw=4`,
//!   shared by `--machine=` flags and the `BSCHED_MACHINE` environment
//!   knob ([`MachineSpec::from_env`]), with the workspace-wide
//!   [`bsched_util::spec`] error/exit-2 contract;
//! * **structural validation**: memory ports must fit inside the issue
//!   width, predictor tables must be powers of two, at least one MSHR.
//!
//! Every machine runs bit-identically on both simulation engines: the
//! predictor, prefetcher, and MSHR-policy axes live behind types both
//! engines share (or mirror under the equivalence suite).
//!
//! ```
//! use bsched_sim::{MachineSpec, Simulator};
//!
//! let m: MachineSpec = "alpha21164+bp=gshare+iw=2+ports=2".parse().unwrap();
//! assert_eq!(m.config().issue_width, 2);
//! assert_eq!(m.config().mem_ports, 2);
//! assert!("vax11".parse::<MachineSpec>().is_err());
//! ```

use crate::config::{PredictorKind, SimConfig};
use bsched_mem::{MshrPolicy, PrefetchKind};
use bsched_util::spec;
use std::fmt;
use std::str::FromStr;

/// One registry row: a machine name and what it models.
#[derive(Debug, Clone, Copy)]
pub struct MachineInfo {
    /// The registry name (the spec grammar's `NAME`).
    pub name: &'static str,
    /// One-line description for docs and `--machines` listings.
    pub summary: &'static str,
}

/// The named machines, in presentation order.
const REGISTRY: &[MachineInfo] = &[
    MachineInfo {
        name: "alpha21164",
        summary: "the paper's machine: single-issue, bimodal, lockup-free L1 (§4.3)",
    },
    MachineInfo {
        name: "simple1993",
        summary: "Kerns–Eggers 1993 simple model: perfect I-cache, single-cycle non-loads",
    },
    MachineInfo {
        name: "wide2",
        summary: "dual-issue 21164 variant, one memory port",
    },
    MachineInfo {
        name: "wide4",
        summary: "quad-issue 21164 variant, two memory ports",
    },
    MachineInfo {
        name: "alpha21264",
        summary: "out-of-order-era front end on the in-order core: gshare, stride prefetch, quad issue, 8 MSHRs",
    },
    MachineInfo {
        name: "blocking21164",
        summary: "21164 with a blocking L1: any miss stalls the memory system",
    },
];

/// The spec-grammar usage string for error messages.
const VALID_SPEC: &str = "NAME[+bp=bimodal|gshare|tage][+pf=none|nextline|stride]\
[+mshr=merge|nomerge|blocking][+iw=<n>][+ports=<n>][+mshrs=<n>]";

/// Builds the registry configuration for `name`, if registered.
fn base_config(name: &str) -> Option<SimConfig> {
    let c = SimConfig::alpha21164();
    Some(match name {
        "alpha21164" => c,
        "simple1993" => c.simple_model_1993(),
        "wide2" => c.with_issue(2, 1),
        "wide4" => c.with_issue(4, 2),
        "alpha21264" => c
            .with_issue(4, 2)
            .with_predictor(PredictorKind::Gshare)
            .with_prefetch(PrefetchKind::Stride)
            .with_mshrs(8),
        "blocking21164" => c.with_mshr_policy(MshrPolicy::Blocking),
        _ => return None,
    })
}

/// A validated machine description: a canonical spec string plus the
/// [`SimConfig`] it denotes.
///
/// Construct from the registry ([`MachineSpec::named`]), the spec
/// grammar ([`FromStr`]), the environment ([`MachineSpec::from_env`]),
/// or a raw configuration ([`MachineSpec::custom`]). All constructors
/// enforce the same structural validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    spec: String,
    config: SimConfig,
}

impl MachineSpec {
    /// The registered machines, in presentation order.
    #[must_use]
    pub fn registry() -> &'static [MachineInfo] {
        REGISTRY
    }

    /// The registered machine names joined for error messages.
    #[must_use]
    pub fn valid_names() -> String {
        REGISTRY
            .iter()
            .map(|m| m.name)
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Looks up a registered machine by name (no modifiers).
    ///
    /// # Errors
    ///
    /// The shared unknown-name error listing every registered machine.
    pub fn named(name: &str) -> Result<MachineSpec, String> {
        let config = base_config(name).ok_or_else(|| {
            spec::unknown(
                "machine",
                name,
                &format!("valid machines: {}", MachineSpec::valid_names()),
            )
        })?;
        Ok(MachineSpec {
            spec: name.to_string(),
            config,
        })
    }

    /// The paper's machine — the default everywhere.
    #[must_use]
    pub fn alpha21164() -> MachineSpec {
        MachineSpec::named("alpha21164").expect("alpha21164 is registered")
    }

    /// Wraps a raw configuration (programmatic escape hatch; ablation
    /// sweeps that perturb single knobs). The spec string is `custom`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails structural validation — use
    /// [`MachineSpec::try_custom`] to handle that as an error.
    #[must_use]
    pub fn custom(config: SimConfig) -> MachineSpec {
        MachineSpec::try_custom(config).expect("structurally valid SimConfig")
    }

    /// Fallible [`MachineSpec::custom`].
    ///
    /// # Errors
    ///
    /// The structural-validation failure, as a displayable reason.
    pub fn try_custom(config: SimConfig) -> Result<MachineSpec, String> {
        validate(&config)?;
        Ok(MachineSpec {
            spec: "custom".to_string(),
            config,
        })
    }

    /// Reads the `BSCHED_MACHINE` environment knob. `Ok(None)` when the
    /// variable is unset or empty.
    ///
    /// # Errors
    ///
    /// The shared spec-grammar error for a malformed value; CLI front
    /// ends pass it to [`bsched_util::spec::exit2`].
    pub fn from_env() -> Result<Option<MachineSpec>, String> {
        match std::env::var("BSCHED_MACHINE") {
            Ok(v) if !v.trim().is_empty() => v.parse().map(Some),
            _ => Ok(None),
        }
    }

    /// The canonical spec string (`alpha21164+bp=gshare`, `custom`, …).
    #[must_use]
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The base machine name (the spec up to the first modifier).
    #[must_use]
    pub fn name(&self) -> &str {
        self.spec.split('+').next().unwrap_or(&self.spec)
    }

    /// The validated simulator configuration this machine denotes.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec)
    }
}

impl FromStr for MachineSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let (name, modifiers) = match t.split_once('+') {
            Some((n, rest)) => (n.trim(), Some(rest)),
            None => (t, None),
        };
        let mut config = base_config(name).ok_or_else(|| {
            spec::unknown(
                "machine",
                name,
                &format!("valid machines: {}", MachineSpec::valid_names()),
            )
        })?;
        if let Some(modifiers) = modifiers {
            let bad = |reason: &str| spec::invalid("machine", t, reason, VALID_SPEC);
            let int = |key: &str, v: &str| -> Result<u64, String> {
                spec::parse_u64(v).ok_or_else(|| bad(&format!("{key} wants an integer, got {v:?}")))
            };
            let mut width: Option<u32> = None;
            let mut ports: Option<u32> = None;
            for (k, v) in spec::pairs(modifiers, '+').map_err(|r| bad(&r))? {
                match k {
                    "bp" => config.branch.kind = v.parse().map_err(|e: String| bad(&e))?,
                    "pf" => {
                        let kind: PrefetchKind = v.parse().map_err(|e: String| bad(&e))?;
                        config.mem = config.mem.with_prefetch(kind);
                    }
                    "mshr" => {
                        let policy: MshrPolicy = v.parse().map_err(|e: String| bad(&e))?;
                        config.mem = config.mem.with_mshr_policy(policy);
                    }
                    "iw" => width = Some(int("iw", v)? as u32),
                    "ports" => ports = Some(int("ports", v)? as u32),
                    "mshrs" => {
                        let n = int("mshrs", v)? as usize;
                        if n == 0 {
                            return Err(bad("at least one MSHR is required"));
                        }
                        config.mem = config.mem.with_mshrs(n);
                    }
                    other => return Err(bad(&format!("unknown key {other:?}"))),
                }
            }
            // `iw` without `ports` keeps the documented historical
            // scaling; `ports` alone adjusts the base machine's width.
            match (width, ports) {
                (Some(w), Some(p)) => {
                    config.issue_width = w;
                    config.mem_ports = p;
                }
                (Some(w), None) => {
                    config.issue_width = w;
                    config.mem_ports = (w / 2).max(1);
                }
                (None, Some(p)) => config.mem_ports = p,
                (None, None) => {}
            }
        }
        validate(&config).map_err(|r| spec::invalid("machine", t, &r, VALID_SPEC))?;
        Ok(MachineSpec {
            spec: t.to_string(),
            config,
        })
    }
}

/// Structural validation shared by every [`MachineSpec`] constructor.
fn validate(config: &SimConfig) -> Result<(), String> {
    if config.issue_width == 0 {
        return Err("issue width must be >= 1".to_string());
    }
    if config.mem_ports == 0 || config.mem_ports > config.issue_width {
        return Err(format!(
            "memory ports ({}) must be between 1 and the issue width ({})",
            config.mem_ports, config.issue_width
        ));
    }
    if !config.branch.entries.is_power_of_two() {
        return Err(format!(
            "branch predictor entries ({}) must be a power of two",
            config.branch.entries
        ));
    }
    if config.mem.mshrs == 0 {
        return Err("at least one MSHR is required".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_machine_builds_and_validates() {
        for info in MachineSpec::registry() {
            let m = MachineSpec::named(info.name).unwrap();
            assert_eq!(m.spec(), info.name);
            assert_eq!(m.name(), info.name);
            let parsed: MachineSpec = info.name.parse().unwrap();
            assert_eq!(parsed, m);
        }
    }

    #[test]
    fn alpha21164_is_the_default_config() {
        assert_eq!(MachineSpec::alpha21164().config(), SimConfig::default());
    }

    #[test]
    fn modifiers_apply_on_top_of_the_base() {
        let m: MachineSpec = "alpha21164+bp=tage+pf=nextline+mshr=nomerge+iw=4+ports=3+mshrs=2"
            .parse()
            .unwrap();
        let c = m.config();
        assert_eq!(c.branch.kind, PredictorKind::TageLite);
        assert_eq!(c.mem.prefetch, PrefetchKind::NextLine);
        assert_eq!(c.mem.mshr_policy, MshrPolicy::NoMerge);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.mem_ports, 3);
        assert_eq!(c.mem.mshrs, 2);
        assert_eq!(m.name(), "alpha21164");
    }

    #[test]
    fn iw_without_ports_keeps_the_historical_scaling() {
        let m: MachineSpec = "alpha21164+iw=4".parse().unwrap();
        assert_eq!(m.config().issue_width, 4);
        assert_eq!(m.config().mem_ports, 2);
        let one: MachineSpec = "alpha21164+iw=1".parse().unwrap();
        assert_eq!(one.config().mem_ports, 1);
    }

    #[test]
    fn unknown_machine_lists_the_registry() {
        let e = "vax11".parse::<MachineSpec>().unwrap_err();
        assert!(e.contains("unknown machine"), "{e}");
        assert!(e.contains("alpha21164") && e.contains("blocking21164"), "{e}");
    }

    #[test]
    fn malformed_specs_report_the_shared_error_shape() {
        for (spec, needle) in [
            ("alpha21164+bp", "expected key=value"),
            ("alpha21164+bp=perceptron", "unknown branch predictor"),
            ("alpha21164+pf=psychic", "unknown prefetcher"),
            ("alpha21164+mshr=magic", "unknown MSHR policy"),
            ("alpha21164+iw=four", "iw wants an integer"),
            ("alpha21164+zoom=1", "unknown key"),
        ] {
            let e = spec.parse::<MachineSpec>().unwrap_err();
            assert!(e.contains("invalid machine spec"), "{spec}: {e}");
            assert!(e.contains(needle), "{spec}: {e}");
        }
    }

    #[test]
    fn structural_validation_rejects_bad_shapes() {
        let e = "alpha21164+ports=2".parse::<MachineSpec>().unwrap_err();
        assert!(e.contains("memory ports (2) must be between 1 and the issue width (1)"), "{e}");
        let e = "wide4+iw=2+ports=3".parse::<MachineSpec>().unwrap_err();
        assert!(e.contains("memory ports (3)"), "{e}");
        let e = "alpha21164+mshrs=0".parse::<MachineSpec>().unwrap_err();
        assert!(e.contains("at least one MSHR"), "{e}");
        let mut c = SimConfig::default();
        c.branch.entries = 1000;
        assert!(MachineSpec::try_custom(c)
            .unwrap_err()
            .contains("power of two"));
    }

    #[test]
    fn custom_wraps_programmatic_configs() {
        let c = SimConfig::default().with_mshrs(3);
        let m = MachineSpec::custom(c);
        assert_eq!(m.spec(), "custom");
        assert_eq!(m.config(), c);
    }

    #[test]
    fn from_env_reads_bsched_machine() {
        // Env mutation: keep this test single-threaded over the knob by
        // doing set/unset inside one test.
        std::env::set_var("BSCHED_MACHINE", "wide2");
        let m = MachineSpec::from_env().unwrap().expect("set");
        assert_eq!(m.name(), "wide2");
        std::env::set_var("BSCHED_MACHINE", "not-a-machine");
        assert!(MachineSpec::from_env().is_err());
        std::env::remove_var("BSCHED_MACHINE");
        assert!(MachineSpec::from_env().unwrap().is_none());
    }

    #[test]
    fn zoo_machines_differ_from_the_paper_machine() {
        let base = MachineSpec::alpha21164().config();
        for name in ["simple1993", "wide2", "wide4", "alpha21264", "blocking21164"] {
            assert_ne!(
                MachineSpec::named(name).unwrap().config(),
                base,
                "{name} should not alias the paper machine"
            );
        }
    }
}
