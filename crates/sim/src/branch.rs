//! Bimodal (2-bit saturating counter) branch predictor.

use crate::config::BranchConfig;

/// A table of 2-bit saturating counters indexed by branch address.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: usize,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `config.entries` is not a power of two.
    #[must_use]
    pub fn new(config: &BranchConfig) -> Self {
        assert!(config.entries.is_power_of_two());
        BranchPredictor {
            counters: vec![1; config.entries], // weakly not-taken
            mask: config.entries - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts and updates for the branch at `pc` with actual outcome
    /// `taken`. Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted_taken = self.counters[i] >= 2;
        self.predictions += 1;
        if taken {
            if self.counters[i] < 3 {
                self.counters[i] += 1;
            }
        } else if self.counters[i] > 0 {
            self.counters[i] -= 1;
        }
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Number of predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = BranchPredictor::new(&BranchConfig::default());
        // Loop-style branch: taken 100 times.
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.predict_and_update(0x40, true) {
                wrong += 1;
            }
        }
        assert!(
            wrong <= 2,
            "should converge almost immediately, got {wrong}"
        );
        assert_eq!(p.predictions(), 100);
    }

    #[test]
    fn alternating_branch_hurts() {
        let mut p = BranchPredictor::new(&BranchConfig::default());
        let mut wrong = 0;
        for k in 0..100 {
            if !p.predict_and_update(0x80, k % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong >= 40, "alternation defeats a bimodal predictor");
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = BranchPredictor::new(&BranchConfig::default());
        for _ in 0..10 {
            p.predict_and_update(0x100, true);
        }
        // A different branch starts from the initial state.
        assert!(
            !p.predict_and_update(0x104, true),
            "fresh counter predicts not-taken"
        );
    }
}
