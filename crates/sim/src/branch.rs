//! Branch predictors: bimodal, gshare, and a small TAGE.
//!
//! One [`BranchPredictor`] type dispatches internally on
//! [`PredictorKind`], so every consumer (the interpreting engine, the
//! block-compiled engine, and sampled replay) picks up new predictors
//! with bit-identical behaviour automatically. All predictors are
//! deterministic — no randomized allocation — which is what makes the
//! cross-engine equivalence guarantee free.

use crate::config::{BranchConfig, PredictorKind};

/// A branch predictor with the machine-configured algorithm.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    algo: Algo,
    predictions: u64,
    mispredictions: u64,
}

#[derive(Debug, Clone)]
enum Algo {
    Bimodal(Bimodal),
    Gshare(Gshare),
    TageLite(TageLite),
}

impl BranchPredictor {
    /// Creates a predictor in its deterministic initial state (all
    /// counters weakly not-taken, empty history, empty tagged tables).
    ///
    /// # Panics
    ///
    /// Panics if `config.entries` is not a power of two.
    #[must_use]
    pub fn new(config: &BranchConfig) -> Self {
        assert!(config.entries.is_power_of_two());
        let algo = match config.kind {
            PredictorKind::Bimodal => Algo::Bimodal(Bimodal::new(config.entries)),
            PredictorKind::Gshare => Algo::Gshare(Gshare::new(config.entries)),
            PredictorKind::TageLite => Algo::TageLite(TageLite::new(config.entries)),
        };
        BranchPredictor {
            algo,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts and updates for the branch at `pc` with actual outcome
    /// `taken`. Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let predicted_taken = match &mut self.algo {
            Algo::Bimodal(p) => p.predict_and_update(pc, taken),
            Algo::Gshare(p) => p.predict_and_update(pc, taken),
            Algo::TageLite(p) => p.predict_and_update(pc, taken),
        };
        self.predictions += 1;
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Number of predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

/// Saturating 2-bit counter update (0..=3, taken when >= 2).
fn bump2(c: &mut u8, taken: bool) {
    if taken {
        if *c < 3 {
            *c += 1;
        }
    } else if *c > 0 {
        *c -= 1;
    }
}

/// Per-PC 2-bit saturating counters, all initialised weakly not-taken.
#[derive(Debug, Clone)]
struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    fn new(entries: usize) -> Self {
        Bimodal {
            counters: vec![1; entries], // weakly not-taken
            mask: entries - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted = self.counters[i] >= 2;
        bump2(&mut self.counters[i], taken);
        predicted
    }
}

/// Global-history XOR PC indexed counters (McFarling). History length
/// equals the table's index width, so one table exactly covers the
/// history space.
#[derive(Debug, Clone)]
struct Gshare {
    counters: Vec<u8>,
    mask: usize,
    history: usize,
}

impl Gshare {
    fn new(entries: usize) -> Self {
        Gshare {
            counters: vec![1; entries],
            mask: entries - 1,
            history: 0,
        }
    }

    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = (((pc >> 2) as usize) ^ self.history) & self.mask;
        let predicted = self.counters[i] >= 2;
        bump2(&mut self.counters[i], taken);
        self.history = ((self.history << 1) | usize::from(taken)) & self.mask;
        predicted
    }
}

/// One tagged-table entry: partial tag, 3-bit prediction counter
/// (taken when >= 4), 2-bit usefulness counter.
#[derive(Debug, Clone, Copy)]
struct TageEntry {
    tag: u16,
    ctr: u8,
    useful: u8,
    valid: bool,
}

const TAGE_EMPTY: TageEntry = TageEntry {
    tag: 0,
    ctr: 3,
    useful: 0,
    valid: false,
};

/// A partially tagged table with a fixed global-history length.
#[derive(Debug, Clone)]
struct TageTable {
    entries: Vec<TageEntry>,
    mask: usize,
    hist_len: u32,
}

impl TageTable {
    fn new(entries: usize, hist_len: u32) -> Self {
        TageTable {
            entries: vec![TAGE_EMPTY; entries],
            mask: entries - 1,
            hist_len,
        }
    }

    /// XOR-folds the low `self.hist_len` bits of `history` down to
    /// `width` bits.
    fn fold(&self, history: u64, width: u32) -> u64 {
        let mut h = if self.hist_len >= 64 {
            history
        } else {
            history & ((1u64 << self.hist_len) - 1)
        };
        let mut out = 0u64;
        while h != 0 {
            out ^= h & ((1u64 << width) - 1);
            h >>= width;
        }
        out
    }

    fn index(&self, pc: u64, history: u64) -> usize {
        let width = (self.mask as u64 + 1).trailing_zeros().max(1);
        (((pc >> 2) ^ self.fold(history, width)) as usize) & self.mask
    }

    fn tag(&self, pc: u64, history: u64) -> u16 {
        // A different fold width decorrelates the tag from the index.
        (((pc >> 2) ^ (pc >> 9) ^ self.fold(history, 9)) & 0x1ff) as u16
    }
}

/// A small deterministic TAGE: bimodal base plus two tagged tables with
/// geometric history lengths (8 and 16). The longest-history tag match
/// provides the prediction; mispredictions allocate into a longer table
/// whose victim entry is no longer useful.
#[derive(Debug, Clone)]
struct TageLite {
    base: Bimodal,
    tables: [TageTable; 2],
    history: u64,
}

impl TageLite {
    fn new(entries: usize) -> Self {
        let tagged = (entries / 4).max(16);
        TageLite {
            base: Bimodal::new(entries),
            tables: [TageTable::new(tagged, 8), TageTable::new(tagged, 16)],
            history: 0,
        }
    }

    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        // Find the provider: the longest-history table with a tag hit.
        let mut provider: Option<usize> = None;
        let mut slots = [0usize; 2];
        let mut tags = [0u16; 2];
        for (t, table) in self.tables.iter().enumerate() {
            slots[t] = table.index(pc, self.history);
            tags[t] = table.tag(pc, self.history);
            let e = &table.entries[slots[t]];
            if e.valid && e.tag == tags[t] {
                provider = Some(t);
            }
        }

        let base_pred = {
            let i = self.base.index(pc);
            self.base.counters[i] >= 2
        };
        let predicted = match provider {
            Some(t) => self.tables[t].entries[slots[t]].ctr >= 4,
            None => base_pred,
        };

        // Update the provider (or the base when no table hit).
        match provider {
            Some(t) => {
                let e = &mut self.tables[t].entries[slots[t]];
                if taken {
                    if e.ctr < 7 {
                        e.ctr += 1;
                    }
                } else if e.ctr > 0 {
                    e.ctr -= 1;
                }
                // Usefulness: the tagged entry earned its keep iff it
                // disagreed with the base and was right.
                if predicted != base_pred {
                    if predicted == taken {
                        if e.useful < 3 {
                            e.useful += 1;
                        }
                    } else if e.useful > 0 {
                        e.useful -= 1;
                    }
                }
            }
            None => {
                let i = self.base.index(pc);
                bump2(&mut self.base.counters[i], taken);
            }
        }

        // On a misprediction, allocate in a longer-history table.
        if predicted != taken {
            let first_longer = provider.map_or(0, |t| t + 1);
            let mut allocated = false;
            for t in first_longer..self.tables.len() {
                let e = &mut self.tables[t].entries[slots[t]];
                if !e.valid || e.useful == 0 {
                    *e = TageEntry {
                        tag: tags[t],
                        ctr: if taken { 4 } else { 3 },
                        useful: 0,
                        valid: true,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Everybody was useful: age them so a later allocation
                // can succeed.
                for (table, &slot) in self.tables.iter_mut().zip(&slots).skip(first_longer) {
                    let e = &mut table.entries[slot];
                    if e.useful > 0 {
                        e.useful -= 1;
                    }
                }
            }
        }

        self.history = (self.history << 1) | u64::from(taken);
        predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorKind;

    fn config(kind: PredictorKind) -> BranchConfig {
        BranchConfig {
            kind,
            ..BranchConfig::default()
        }
    }

    #[test]
    fn learns_a_biased_branch() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::TageLite,
        ] {
            let mut p = BranchPredictor::new(&config(kind));
            // Loop-style branch: taken 100 times.
            let mut wrong = 0;
            for _ in 0..100 {
                if !p.predict_and_update(0x40, true) {
                    wrong += 1;
                }
            }
            // Gshare pays one cold miss per distinct history prefix
            // until its 10-bit history register saturates.
            assert!(
                wrong <= 12,
                "{kind}: should converge quickly, got {wrong}"
            );
            assert_eq!(p.predictions(), 100);
            assert_eq!(p.mispredictions(), wrong);
        }
    }

    #[test]
    fn alternating_branch_hurts() {
        let mut p = BranchPredictor::new(&BranchConfig::default());
        let mut wrong = 0;
        for k in 0..100 {
            if !p.predict_and_update(0x80, k % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong >= 40, "alternation defeats a bimodal predictor");
    }

    #[test]
    fn history_predictors_learn_an_alternating_branch() {
        for kind in [PredictorKind::Gshare, PredictorKind::TageLite] {
            let mut p = BranchPredictor::new(&config(kind));
            let mut late_wrong = 0;
            for k in 0..400 {
                let correct = p.predict_and_update(0x80, k % 2 == 0);
                if k >= 200 && !correct {
                    late_wrong += 1;
                }
            }
            assert!(
                late_wrong <= 10,
                "{kind}: history should capture alternation, {late_wrong} late misses"
            );
        }
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = BranchPredictor::new(&BranchConfig::default());
        for _ in 0..10 {
            p.predict_and_update(0x100, true);
        }
        // A different branch starts from the initial state.
        assert!(
            !p.predict_and_update(0x104, true),
            "fresh counter predicts not-taken"
        );
    }

    #[test]
    fn bimodal_matches_legacy_counter_semantics() {
        // Pin the exact counter trajectory the original single-table
        // predictor had: init 1, not-taken until the counter crosses 2.
        let mut p = BranchPredictor::new(&BranchConfig::default());
        assert!(!p.predict_and_update(0x40, true)); // ctr 1 -> predicts NT, now 2
        assert!(p.predict_and_update(0x40, true)); // ctr 2 -> predicts T, now 3
        assert!(p.predict_and_update(0x40, true)); // saturates at 3
        assert!(!p.predict_and_update(0x40, false)); // predicts T, wrong, now 2
        assert_eq!(p.predictions(), 4);
        assert_eq!(p.mispredictions(), 2);
    }

    #[test]
    fn predictors_are_deterministic() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::TageLite,
        ] {
            let mut a = BranchPredictor::new(&config(kind));
            let mut b = BranchPredictor::new(&config(kind));
            let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
            for _ in 0..2000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pc = 0x40 + 4 * (x >> 60);
                let taken = (x >> 17) & 1 == 1;
                assert_eq!(
                    a.predict_and_update(pc, taken),
                    b.predict_and_update(pc, taken),
                    "{kind}: diverged"
                );
            }
            assert_eq!(a.mispredictions(), b.mispredictions());
        }
    }
}
