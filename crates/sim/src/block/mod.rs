//! The block-compiled execution engine.
//!
//! Where the interpreting engine decodes, evaluates, and charges every
//! instruction on every visit, this engine translates each basic block
//! once into a static cost [`skeleton::Skeleton`] (cached by block
//! identity in a [`cache::BlockCache`]) and per visit replays only the
//! dynamic parts of the machine model: cache/TLB lookups, MSHR
//! occupancy, branch outcomes, and the scoreboard. The replay loop
//! reproduces `Simulator`'s interpreting engine **bit for bit** — same
//! `SimMetrics`, same per-load-site trace attribution, same memory
//! checksum — which the conformance suite (`bsched-verify`) enforces on
//! every verified cell.

mod cache;
mod mem;
mod skeleton;

use crate::branch::BranchPredictor;
use crate::config::SimConfig;
use crate::machine::{code_layout, flush_site_events, SimResult, SiteStat, CODE_BASE, NO_SITE};
use crate::metrics::SimMetrics;
use bsched_ir::{ExecError, MemImage, Op, Program, Reg, RegClass};
use cache::{BlockCache, CacheStats};
use mem::FastHier;
use skeleton::TermKind;

/// One register's full dynamic state, kept together so each operand
/// costs a single indexed access (and a single cache line) in the
/// replay loop: the raw 64-bit value image, the scoreboard ready time,
/// and the load site to blame for interlocks on it.
#[derive(Debug, Clone, Copy)]
struct RegSlot {
    val: u64,
    ready: u64,
    site: u32,
}

/// Runs `program` to completion on the block-compiled engine.
pub(crate) fn run(program: &Program, config: SimConfig) -> Result<SimResult, ExecError> {
    run_with_stats(program, config).map(|(result, _)| result)
}

/// [`run`], also returning the block-cache build/visit counters (used
/// by the unit tests below to pin the caching behaviour).
///
/// Single-issue machines (the paper's default grid) replay through a
/// specialised loop: with `issue_width == 1` the slot counter is
/// provably 1 at the top of every instruction after the first of a
/// group, so the structural-limit check collapses to an unconditional
/// `now += 1` (suppressed only right after a fetch stall or a control
/// transfer, where the group is already fresh) and the memory-port
/// limit can never bind. The wide path keeps the full group
/// bookkeeping. Both monomorphise from the same body, so the timing
/// semantics cannot drift apart.
pub(crate) fn run_with_stats(
    program: &Program,
    config: SimConfig,
) -> Result<(SimResult, CacheStats), ExecError> {
    if config.issue_width.max(1) == 1 {
        run_impl::<false>(program, config)
    } else {
        run_impl::<true>(program, config)
    }
}

fn run_impl<const WIDE: bool>(
    program: &Program,
    config: SimConfig,
) -> Result<(SimResult, CacheStats), ExecError> {
    let func = program.main();
    let mut mem = MemImage::new(program);
    let bases = mem.region_bases.clone();
    let mut pred = BranchPredictor::new(&config.branch);
    let mut m = SimMetrics::default();

    // Unified register/scoreboard arrays: integer slots first, floats
    // after, then one extra always-ready sentinel slot (operand padding
    // — see `skeleton::sentinel_slot`). Values are raw 64-bit images
    // (`Value::to_bits` form), so loads, stores, moves, and selects
    // copy bits without class dispatch.
    let ni = Reg::NUM_PHYS as usize + func.vreg_count(RegClass::Int) as usize;
    let nf = Reg::NUM_PHYS as usize + func.vreg_count(RegClass::Float) as usize;
    let sentinel = skeleton::sentinel_slot(ni as u32, nf as u32);
    // Padded to a power of two so `slot & mask` is the identity on every
    // valid slot and the optimizer can drop the bounds checks (`i & mask`
    // is provably `< len`).
    let mut rf: Vec<RegSlot> = vec![
        RegSlot {
            val: 0,
            ready: 0,
            site: NO_SITE,
        };
        (ni + nf + 1).next_power_of_two()
    ];
    let rf: &mut [RegSlot] = &mut rf;
    let mask = rf.len() - 1;

    let (block_addr, code_end) = code_layout(func);
    let mut hier = FastHier::new(config.mem, CODE_BASE, code_end);
    let tracing = bsched_trace::enabled();
    let mut sites: Vec<SiteStat> = if tracing {
        vec![SiteStat::default(); ((code_end - CODE_BASE) / 4) as usize]
    } else {
        Vec::new()
    };
    let mut run_span = Some(
        bsched_trace::span(bsched_trace::points::SIM_RUN)
            .label_with(|| program.name().to_string()),
    );

    let mut block_cache = BlockCache::new(func.blocks().len());

    let mut now: u64 = 0;
    let mut executed: u64 = 0;
    let mut cur = func.entry();
    let width = config.issue_width.max(1);
    let ports = config.mem_ports.max(1);
    let mut slot: u32 = 0;
    let mut mem_slot: u32 = 0;
    // Single-issue fast path: the pending group increment (0 exactly
    // when the current instruction starts a fresh group).
    let mut inc: u64 = 0;

    loop {
        let index = cur.index();
        let sk = block_cache.get_or_build(index, || {
            skeleton::build(
                func.block(cur),
                block_addr[index],
                &config,
                &bases,
                ni as u32,
                sentinel,
            )
        });
        debug_assert_eq!(
            sk.n_insts,
            func.block(cur).insts.len() as u64,
            "block {index} changed size under a cached skeleton — \
             the IR must not be mutated during a run"
        );

        // Fuel is charged per instruction, but the check only needs per
        // instruction precision when this block could actually trip it:
        // the per-inst check fires at the smallest k with
        // `executed + k > fuel`, which exists within the block iff
        // `executed + n_insts > fuel`. Otherwise the whole block is
        // charged at once. Precise mode still walks instruction by
        // instruction so an earlier in-block error (e.g. a wild store)
        // wins over fuel exhaustion in exactly the interpreter's order.
        let precise_fuel = executed + sk.n_insts > config.fuel;
        if !precise_fuel {
            executed += sk.n_insts;
        }
        for mo in &sk.micros {
            if precise_fuel {
                executed += 1;
                if executed > config.fuel {
                    return Err(ExecError::OutOfFuel { fuel: config.fuel });
                }
            }
            // 1. Fetch — only at icache-line boundaries. Every skipped
            // fetch is a guaranteed icache+ITB hit whose access returns
            // `ready_at == issue_at` and touches no observable state.
            if mo.fetch {
                let f = hier.inst_fetch(mo.pc, now);
                if f.ready_at > now {
                    m.fetch_stall += f.ready_at - now;
                    now = f.ready_at;
                    if WIDE {
                        slot = 0;
                        mem_slot = 0;
                    } else {
                        inc = 0;
                    }
                }
            }
            // 2. Structural issue limits (single-issue: every
            // instruction past the first of a group takes a cycle).
            if WIDE {
                if slot >= width || (mo.is_memory && mem_slot >= ports) {
                    now += 1;
                    slot = 0;
                    mem_slot = 0;
                }
            } else {
                now += inc;
                inc = 1;
            }
            // 2b. Operand interlock (order-sensitive blame rule,
            // identical to the interpreter's). The scan is fixed-width:
            // missing operands are the sentinel slot, which is always
            // ready at 0 with no site and so can never win. On
            // single-issue machines the skeleton statically elides the
            // scan where no source can possibly stall (`MicroOp::chk`);
            // the proof does not hold for wide issue, so `WIDE` always
            // scans. The stall bookkeeping is branchless: a zero stall
            // adds zero to whichever counter is selected.
            let s0 = rf[mo.srcs[0] as usize & mask];
            let s1 = rf[mo.srcs[1] as usize & mask];
            let s2 = rf[mo.srcs[2] as usize & mask];
            if WIDE || mo.chk {
                let mut op_ready = now;
                let mut blame_site = NO_SITE;
                for s in [&s0, &s1, &s2] {
                    let win = (s.ready > op_ready)
                        | ((s.ready == op_ready) & (s.site != NO_SITE) & (s.ready > now));
                    if win {
                        op_ready = s.ready;
                        blame_site = s.site;
                    }
                }
                // A blamed site implies a strictly positive stall (the
                // blame rule only fires for `ready > now`), so the zero
                // case always lands on `fixed_interlock += 0`.
                let stall = op_ready - now;
                let load_blame = blame_site != NO_SITE;
                m.load_interlock += if load_blame { stall } else { 0 };
                m.fixed_interlock += if load_blame { 0 } else { stall };
                if tracing && load_blame {
                    sites[blame_site as usize].interlock += stall;
                }
                now = op_ready;
                if WIDE && stall > 0 {
                    slot = 0;
                    mem_slot = 0;
                }
            }
            // 3. Execute the dynamic part.
            match mo.code {
                Op::Ld => {
                    let addr = (s0.val as i64).wrapping_add(mo.imm as i64) as u64;
                    let (a, mshr_stall) = hier.data_read(addr, now);
                    m.load_interlock += mshr_stall;
                    m.tlb_stall += (a.issue_at - now) - mshr_stall;
                    if tracing {
                        let st = &mut sites[mo.aux as usize];
                        st.issued += 1;
                        st.mshr += mshr_stall;
                        st.hits[a.level as usize] += 1;
                    }
                    // `issue_at >= now` always (stalls only push it
                    // forward), so the assignment needs no guard.
                    if WIDE && a.issue_at > now {
                        slot = 0;
                        mem_slot = 0;
                    }
                    now = a.issue_at;
                    rf[mo.dst as usize & mask] = RegSlot {
                        val: mem.load(addr),
                        ready: a.ready_at,
                        site: mo.aux,
                    };
                }
                Op::St => {
                    let addr = (s1.val as i64).wrapping_add(mo.imm as i64) as u64;
                    let (a, wb_stall) = hier.data_write(addr, now);
                    m.store_stall += wb_stall;
                    m.tlb_stall += (a.issue_at - now) - wb_stall;
                    if WIDE && a.issue_at > now {
                        slot = 0;
                        mem_slot = 0;
                    }
                    now = a.issue_at;
                    mem.store(addr, s0.val)?;
                }
                code => {
                    rf[mo.dst as usize & mask] = RegSlot {
                        val: eval_code(code, s0.val, s1.val, s2.val, mo.imm),
                        ready: now + u64::from(mo.aux),
                        site: NO_SITE,
                    };
                }
            }
            // 4. The instruction occupies one slot of the group.
            if WIDE {
                slot += 1;
                if mo.is_memory {
                    mem_slot += 1;
                }
            }
        }

        // Terminator: fetch (batched into the block's line runs), then
        // the whole-block instruction-count delta, then control flow.
        if sk.term_fetch {
            let f = hier.inst_fetch(sk.term_pc, now);
            if f.ready_at > now {
                m.fetch_stall += f.ready_at - now;
                now = f.ready_at;
            }
        }
        let next = match sk.term {
            TermKind::Jmp { target } => {
                // A control transfer ends the issue group.
                now += 1;
                if WIDE {
                    slot = 0;
                    mem_slot = 0;
                } else {
                    inc = 0;
                }
                target
            }
            TermKind::Br {
                cond,
                when,
                taken,
                fall,
            } => {
                let c = rf[cond as usize & mask];
                if (WIDE || sk.br_chk) && c.ready > now {
                    let stall = c.ready - now;
                    if c.site != NO_SITE {
                        m.load_interlock += stall;
                        if tracing {
                            sites[c.site as usize].interlock += stall;
                        }
                    } else {
                        m.fixed_interlock += stall;
                    }
                    now = c.ready;
                }
                let is_taken = when.holds(c.val as i64);
                if !pred.predict_and_update(sk.term_pc, is_taken) {
                    m.branch_penalty += u64::from(config.branch.mispredict_penalty);
                    now += u64::from(config.branch.mispredict_penalty);
                }
                // A control transfer ends the issue group.
                now += 1;
                if WIDE {
                    slot = 0;
                    mem_slot = 0;
                } else {
                    inc = 0;
                }
                if is_taken {
                    taken
                } else {
                    fall
                }
            }
            TermKind::Ret => {
                m.cycles = now;
                m.mem = *hier.stats();
                // Fold the per-block instruction counts once: Σ over
                // blocks of (visits × static counts) equals the
                // per-visit accumulation exactly.
                for (sk, n) in block_cache.entries() {
                    m.insts.scaled_add(&sk.counts, n);
                }
                if tracing {
                    flush_site_events(program.name(), &sites, &block_addr);
                    if let Some(span) = run_span.take() {
                        span.finish(&[("cycles", m.cycles), ("load_interlock", m.load_interlock)]);
                    }
                }
                let result = SimResult {
                    metrics: m,
                    checksum: mem.checksum(),
                    sample: None,
                };
                return Ok((result, block_cache.stats()));
            }
        };
        cur = next;
    }
}

/// Evaluates a pure operation directly on raw 64-bit register images.
///
/// This mirrors [`bsched_ir::value::eval`] exactly — same wrapping
/// arithmetic, same shift masking, same truncating conversions — but
/// skips the `Value` enum entirely: integer slots hold `i64 as u64`,
/// float slots hold `f64::to_bits`, and `from_bits`/`to_bits` round-trip
/// bit-exactly, so operating on images is operating on values. A drift
/// test below replays every opcode against `value::eval` on shared
/// inputs.
///
/// `imm` is the decode-time OR-fold described on
/// [`skeleton::MicroOp::imm`]: immediate-carrying integer ops keep
/// `v1 == 0` (the sentinel slot), so `v1 | imm` selects the immediate
/// without a branch; `Li`/`FLi`/`LdAddr` read their pre-resolved
/// constant bits straight from it.
#[inline(always)]
fn eval_code(op: Op, v0: u64, v1: u64, v2: u64, imm: u64) -> u64 {
    use Op::*;
    let a = v0 as i64;
    let b = (v1 | imm) as i64;
    let fa = f64::from_bits(v0);
    let fb = f64::from_bits(v1);
    match op {
        Add => a.wrapping_add(b) as u64,
        Sub => a.wrapping_sub(b) as u64,
        And => (a & b) as u64,
        Or => (a | b) as u64,
        Xor => (a ^ b) as u64,
        Shl => a.wrapping_shl(b as u32 & 63) as u64,
        Shr => a.wrapping_shr(b as u32 & 63) as u64,
        CmpEq => i64::from(a == b) as u64,
        CmpLt => i64::from(a < b) as u64,
        CmpLe => i64::from(a <= b) as u64,
        Mul => a.wrapping_mul(b) as u64,
        Mov | FMov => v0,
        Li | FLi | LdAddr => imm,
        Cmov | FCmov => {
            if a != 0 {
                v1
            } else {
                v2
            }
        }
        FAdd => (fa + fb).to_bits(),
        FSub => (fa - fb).to_bits(),
        FMul => (fa * fb).to_bits(),
        FDivS | FDivD => (fa / fb).to_bits(),
        FCmpEq => i64::from(fa == fb) as u64,
        FCmpLt => i64::from(fa < fb) as u64,
        FCmpLe => i64::from(fa <= fb) as u64,
        CvtIF => (a as f64).to_bits(),
        CvtFI => (fa as i64) as u64,
        FNeg => (-fa).to_bits(),
        FSqrt => fa.abs().sqrt().to_bits(),
        Ld | St => unreachable!("memory opcode {op} dispatched as pure"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{value, Value};

    /// Every pure opcode, evaluated both ways on shared inputs, must
    /// agree bit for bit — the guard against `eval_bits` drifting from
    /// `value::eval`.
    #[test]
    fn eval_bits_matches_value_eval_on_every_pure_op() {
        use Op::*;
        let int_pairs: [(i64, i64); 6] = [
            (0, 0),
            (6, 7),
            (-3, 5),
            (i64::MAX, 1),
            (i64::MIN, -1),
            (123_456_789, -987),
        ];
        let fp_pairs: [(f64, f64); 6] = [
            (0.0, 0.0),
            (1.5, 0.5),
            (-3.25, 2.0),
            (f64::INFINITY, 1.0),
            (1.0, 0.0),
            (-0.0, 4.0),
        ];
        let check = |op: Op, vals: &[Value], imm: Option<i64>, fimm: f64| {
            // Pad to three register images the way the skeleton pads
            // operands with the sentinel slot (whose value is always 0 —
            // the invariant the OR-folded immediate relies on), and
            // encode the immediate exactly the way `skeleton::build`
            // does.
            let mut v: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
            v.resize(3, 0);
            let imm_bits = match op {
                Op::FLi => fimm.to_bits(),
                _ => imm.unwrap_or(0) as u64,
            };
            let got = eval_code(op, v[0], v[1], v[2], imm_bits);
            let want = value::eval(op, vals, imm, fimm).to_bits();
            assert_eq!(got, want, "{op:?} vals={vals:?} imm={imm:?}");
        };

        for &(a, b) in &int_pairs {
            for op in [Add, Sub, And, Or, Xor, Shl, Shr, CmpEq, CmpLt, CmpLe, Mul] {
                check(op, &[Value::Int(a), Value::Int(b)], None, 0.0);
                check(op, &[Value::Int(a)], Some(b), 0.0);
            }
            check(Mov, &[Value::Int(a)], None, 0.0);
            check(Li, &[], Some(a), 0.0);
            for cond in [0, 1, -5] {
                check(
                    Cmov,
                    &[Value::Int(cond), Value::Int(a), Value::Int(b)],
                    None,
                    0.0,
                );
            }
            check(CvtIF, &[Value::Int(a)], None, 0.0);
        }
        for &(a, b) in &fp_pairs {
            for op in [FAdd, FSub, FMul, FDivS, FDivD, FCmpEq, FCmpLt, FCmpLe] {
                check(op, &[Value::Float(a), Value::Float(b)], None, 0.0);
            }
            check(FMov, &[Value::Float(a)], None, 0.0);
            check(FLi, &[], None, a);
            check(FNeg, &[Value::Float(a)], None, 0.0);
            check(FSqrt, &[Value::Float(a)], None, 0.0);
            check(CvtFI, &[Value::Float(3.9)], None, 0.0);
            for cond in [0, 7] {
                check(
                    FCmov,
                    &[Value::Int(cond), Value::Float(a), Value::Float(b)],
                    None,
                    0.0,
                );
            }
        }
    }

    mod block_cache {
        use crate::block::run_with_stats;
        use crate::SimConfig;
        use bsched_ir::{BrCond, FuncBuilder, Op, Program};

        /// for i in 0..n { sum += i } over four blocks (entry, header,
        /// body, exit).
        fn loop_program(n: i64) -> Program {
            let mut p = Program::new("loop");
            let out = p.add_region("out", 8);
            let mut b = FuncBuilder::new("main");
            let header = b.add_block();
            let body = b.add_block();
            let exit = b.add_block();
            let i = b.iconst(0);
            let sum = b.iconst(0);
            let bound = b.iconst(n);
            let base = b.load_region_addr(out);
            b.jmp(header);
            b.switch_to(header);
            let c = b.binop(Op::CmpLt, i, bound);
            b.br(c, BrCond::Zero, exit, body);
            b.switch_to(body);
            b.push(bsched_ir::Inst::op(Op::Add, sum, &[sum, i]));
            b.push(bsched_ir::Inst::op_imm(Op::Add, i, i, 1));
            b.jmp(header);
            b.switch_to(exit);
            b.store(sum, base, 0).with_region(out).emit(&mut b);
            b.ret();
            p.set_main(b.finish());
            p
        }

        #[test]
        fn re_entry_replays_the_cached_skeleton() {
            let p = loop_program(50);
            let (_, stats) = run_with_stats(&p, SimConfig::default()).unwrap();
            // Four distinct blocks, each built exactly once...
            assert_eq!(stats.builds, 4, "{stats:?}");
            // ...but the header and body are visited ~50 times each.
            assert_eq!(stats.visits, 1 + 51 + 50 + 1, "{stats:?}");
        }

        #[test]
        fn cached_replay_is_deterministic_across_visits_and_runs() {
            // The self-modifying-free invariant: the program is immutable
            // during a run, so a skeleton never goes stale — 50 replays
            // of the cached body must leave the machine in exactly the
            // state a fresh run reaches, visit after visit, run after
            // run.
            let p = loop_program(50);
            let (a, sa) = run_with_stats(&p, SimConfig::default()).unwrap();
            let (b, sb) = run_with_stats(&p, SimConfig::default()).unwrap();
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(sa, sb);
        }

        #[test]
        fn cross_region_reuse_is_off_by_default() {
            // Two byte-identical single-block bodies at different code
            // addresses: identity keying must build two skeletons, never
            // share one (sites and fetch addresses are absolute).
            let mut p = Program::new("twins");
            let r = p.add_region("a", 4096);
            let mut b = FuncBuilder::new("main");
            let second = b.add_block();
            let exit = b.add_block();
            let base = b.load_region_addr(r);
            let x = b.load_f(base, 0).with_region(r).emit(&mut b);
            let y = b.binop(Op::FAdd, x, x);
            b.store(y, base, 8).with_region(r).emit(&mut b);
            b.jmp(second);
            b.switch_to(second);
            let base2 = b.load_region_addr(r);
            let x2 = b.load_f(base2, 0).with_region(r).emit(&mut b);
            let y2 = b.binop(Op::FAdd, x2, x2);
            b.store(y2, base2, 8).with_region(r).emit(&mut b);
            b.jmp(exit);
            b.switch_to(exit);
            b.ret();
            p.set_main(b.finish());

            let (_, stats) = run_with_stats(&p, SimConfig::default()).unwrap();
            assert_eq!(stats.builds, 3, "identical blocks must not share skeletons");
        }
    }
}
