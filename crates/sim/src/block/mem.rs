//! The block-compiled engine's private memory-model implementation.
//!
//! [`FastHier`] reproduces `bsched_mem::Hierarchy` **bit for bit** —
//! identical `Access` answers, identical `MemStats`, identical cache,
//! TLB, MSHR, and write-buffer state evolution — but is written for
//! replay speed where the shared hierarchy is written as a readable
//! reference model:
//!
//! * power-of-two geometry is resolved to shifts and masks once at
//!   construction instead of dividing on every access (with an exact
//!   division fallback for non-power-of-two line sizes);
//! * the fully associative TLBs remember their most-recent hit and
//!   probe it before the linear scan (same entries, same LRU stamps —
//!   only the search order for the *matching* entry changes, and the
//!   match is unique);
//! * the MSHR file skips its retire/merge scans while empty (scanning
//!   an empty file is a no-op in the reference model too);
//! * instruction fetches are *proven static* where possible: when the
//!   whole code segment fits the I-cache without conflict (contiguous
//!   lines ≤ sets × assoc) and spans at most `itb_entries` pages,
//!   neither structure can ever evict a code entry, so once a line has
//!   been fetched every later fetch of it is a guaranteed hit that
//!   returns `ready_at == issue_at` and changes no observable state —
//!   those probes collapse to one bit test. Programs too large for the
//!   proof fall back to exact per-fetch modelling.
//!
//! The equivalence suite (`tests/engine_equiv.rs`, the verify grid, and
//! the pipeline fuzzer) pins this module against the reference
//! hierarchy on every metric of every cell.

use bsched_mem::{Access, CacheConfig, Level, MemConfig, MemStats, MshrPolicy, PrefetchKind};

/// One cache way: tag + valid + true-LRU stamp (same replacement state
/// as `bsched_mem::cache::Cache`).
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative cache with shift/mask indexing.
#[derive(Debug, Clone)]
struct FastCache {
    ways: Vec<Way>,
    assoc: usize,
    /// `log2(line)`, or the raw line size when it is not a power of
    /// two (then `set_mask`/`tag_shift` are unused).
    line_shift: u32,
    line: u64,
    line_pow2: bool,
    sets: u64,
    set_mask: u64,
    tag_shift: u32,
    clock: u64,
}

impl FastCache {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets(); // asserts power-of-two set count
        let line_pow2 = config.line.is_power_of_two();
        let line_shift = config.line.trailing_zeros();
        FastCache {
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    stamp: 0
                };
                (sets * u64::from(config.assoc)) as usize
            ],
            assoc: config.assoc as usize,
            line_shift,
            line: config.line,
            line_pow2,
            sets,
            set_mask: sets - 1,
            tag_shift: line_shift + sets.trailing_zeros(),
            clock: 0,
        }
    }

    /// `(set, tag)` of `addr` — identical to the reference model's
    /// `(addr / line) % sets` and `addr / line / sets`.
    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        if self.line_pow2 {
            (
                ((addr >> self.line_shift) & self.set_mask) as usize,
                addr >> self.tag_shift,
            )
        } else {
            let l = addr / self.line;
            ((l % self.sets) as usize, l / self.sets)
        }
    }

    /// Lookup with allocate-on-miss (reads / instruction fetches).
    #[inline]
    fn access(&mut self, addr: u64) -> bool {
        self.access_inner(addr, true)
    }

    /// Lookup without allocation (write-through stores).
    #[inline]
    fn probe_update(&mut self, addr: u64) -> bool {
        self.access_inner(addr, false)
    }

    #[inline]
    fn access_inner(&mut self, addr: u64, allocate: bool) -> bool {
        self.clock += 1;
        let (set, tag) = self.index(addr);
        if self.assoc == 1 {
            // Direct-mapped fast path (the 21164 L1s): one way, no scan,
            // and the victim is always that way.
            let w = &mut self.ways[set];
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                return true;
            }
            if allocate {
                *w = Way {
                    tag,
                    valid: true,
                    stamp: self.clock,
                };
            }
            return false;
        }
        if self.assoc == 3 {
            // Three-way fast path (the 21164 L2): a fixed-size array
            // reference so the probe and the LRU victim scan fully
            // unroll.
            let ways: &mut [Way; 3] = (&mut self.ways[set * 3..set * 3 + 3])
                .try_into()
                .expect("slice of length 3");
            for w in ways.iter_mut() {
                if w.valid && w.tag == tag {
                    w.stamp = self.clock;
                    return true;
                }
            }
            if allocate {
                let victim = ways
                    .iter_mut()
                    .min_by_key(|w| if w.valid { w.stamp } else { 0 })
                    .expect("cache has at least one way");
                *victim = Way {
                    tag,
                    valid: true,
                    stamp: self.clock,
                };
            }
            return false;
        }
        let ways = &mut self.ways[set * self.assoc..(set + 1) * self.assoc];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.stamp = self.clock;
            return true;
        }
        if allocate {
            let victim = ways
                .iter_mut()
                .min_by_key(|w| if w.valid { w.stamp } else { 0 })
                .expect("cache has at least one way");
            *victim = Way {
                tag,
                valid: true,
                stamp: self.clock,
            };
        }
        false
    }

    /// `true` if `addr`'s line is resident — no clock bump, no LRU
    /// touch (mirrors `bsched_mem::cache::Cache::contains`).
    #[inline]
    fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.ways[set * self.assoc..(set + 1) * self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }
}

/// A fully associative TLB with a direct-mapped **hint table** in front
/// of the linear scan.
///
/// `hints[page % HINTS]` remembers where that page was last seen in
/// `entries`. A hint is only ever trusted after verifying
/// `entries[idx].0 == page`, so stale hints (the page was evicted, or
/// `swap_remove` moved another entry into its slot) simply fall through
/// to the exact scan — the hit/miss answers and the LRU stamp evolution
/// are identical to scanning alone, the scan just rarely runs. The
/// match is unique (pages are distinct), so probe order cannot change
/// which entry matches.
#[derive(Debug, Clone)]
struct FastTlb {
    entries: Vec<(u64, u64)>, // (page number, last-use stamp)
    /// `(page, index into entries)`, indexed by `page % HINTS`.
    /// `u64::MAX` is an impossible page number (no sentinel aliasing:
    /// a real page fits well below 2^52).
    hints: Box<[(u64, u32)]>,
    capacity: usize,
    page_shift: u32,
    clock: u64,
}

/// Hint-table slots: a power of two several times the largest TLB so
/// distinct hot pages rarely collide.
const TLB_HINTS: usize = 512;

impl FastTlb {
    fn new(capacity: usize, page_size: u64) -> Self {
        assert!(capacity > 0);
        assert!(page_size.is_power_of_two());
        FastTlb {
            entries: Vec::with_capacity(capacity),
            hints: vec![(u64::MAX, 0); TLB_HINTS].into_boxed_slice(),
            capacity,
            page_shift: page_size.trailing_zeros(),
            clock: 0,
        }
    }

    #[inline]
    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr >> self.page_shift;
        let h = (page as usize) & (TLB_HINTS - 1);
        let (hint_page, hint_idx) = self.hints[h];
        if hint_page == page {
            if let Some(e) = self.entries.get_mut(hint_idx as usize) {
                if e.0 == page {
                    e.1 = self.clock;
                    return true;
                }
            }
        }
        self.access_slow(page, h)
    }

    fn access_slow(&mut self, page: u64, h: usize) -> bool {
        if let Some(i) = self.entries.iter().position(|(p, _)| *p == page) {
            self.entries[i].1 = self.clock;
            self.hints[h] = (page, i as u32);
            return true;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("TLB is non-empty when full");
            self.entries.swap_remove(lru);
        }
        self.hints[h] = (page, self.entries.len() as u32);
        self.entries.push((page, self.clock));
        false
    }
}

#[derive(Debug, Clone, Copy)]
struct MshrEntry {
    line: u64,
    fill_at: u64,
    level: Level,
    /// The entry was allocated by the prefetcher, not a demand miss.
    prefetch: bool,
}

/// The demand-miss stride tracker feeding the L1D prefetcher — same
/// state evolution as the reference model's.
#[derive(Debug, Clone, Copy, Default)]
struct StrideTracker {
    last_line: u64,
    last_delta: i64,
    /// 0 = cold, 1 = one miss seen, 2 = a delta established.
    seen: u8,
}

impl StrideTracker {
    fn observe(&mut self, line: u64) -> Option<i64> {
        let mut predicted = None;
        if self.seen >= 1 {
            let delta = line.wrapping_sub(self.last_line) as i64;
            if self.seen == 2 && delta == self.last_delta && delta != 0 {
                predicted = Some(delta);
            }
            self.last_delta = delta;
            self.seen = 2;
        } else {
            self.seen = 1;
        }
        self.last_line = line;
        predicted
    }
}

/// The engine-private hierarchy. Constructed per run with the code
/// segment bounds so the instruction-fetch fast path can be proven.
#[derive(Debug)]
pub(crate) struct FastHier {
    config: MemConfig,
    l1d: FastCache,
    icache: FastCache,
    l2: FastCache,
    l3: Option<FastCache>,
    dtb: FastTlb,
    itb: FastTlb,
    mshrs: Vec<MshrEntry>,
    /// Earliest `fill_at` among `mshrs` (`u64::MAX` when empty): the
    /// retire scan runs only when an entry has actually expired, which
    /// is at most once per miss instead of once per access.
    mshr_earliest: u64,
    stride: StrideTracker,
    write_buffer: Vec<u64>,
    stats: MemStats,
    /// The static no-eviction proof held, so touched code lines are
    /// resident forever.
    skip_ifetch: bool,
    code_base: u64,
    /// One bit per code line: set once the line has been fetched
    /// through the exact path.
    line_touched: Vec<u64>,
}

impl FastHier {
    /// Builds a cold hierarchy for a code segment spanning
    /// `[code_base, code_end)`.
    pub fn new(config: MemConfig, code_base: u64, code_end: u64) -> Self {
        let icache = FastCache::new(config.icache);
        let itb_pages = ((code_end.max(code_base + 1) - 1) >> config.page_size.trailing_zeros())
            - (code_base >> config.page_size.trailing_zeros())
            + 1;
        let code_lines = if icache.line_pow2 {
            ((code_end.max(code_base + 1) - 1 - code_base) >> icache.line_shift) + 1
        } else {
            (code_end.max(code_base + 1) - 1 - code_base) / icache.line + 1
        };
        // The proof: contiguous lines spread round-robin over the sets,
        // so `lines ≤ sets × assoc` bounds every set's distinct code
        // lines by the associativity — no code line can ever be evicted
        // (only instruction fetches touch the I-cache). Likewise at
        // most `itb_entries` code pages means the fully associative ITB
        // never evicts a code page.
        let skip_ifetch = config.page_size.is_power_of_two()
            && icache.line_pow2
            && code_lines <= icache.sets * icache.assoc as u64
            && itb_pages <= config.itb_entries as u64;
        FastHier {
            l1d: FastCache::new(config.l1d),
            l2: FastCache::new(config.l2),
            l3: config.l3.map(FastCache::new),
            dtb: FastTlb::new(config.dtb_entries, config.page_size),
            itb: FastTlb::new(config.itb_entries, config.page_size),
            mshrs: Vec::with_capacity(config.mshrs),
            mshr_earliest: u64::MAX,
            stride: StrideTracker::default(),
            write_buffer: Vec::new(),
            stats: MemStats::default(),
            skip_ifetch,
            code_base,
            line_touched: vec![0u64; (code_lines as usize).div_ceil(64)],
            icache,
            config,
        }
    }

    /// Statistics gathered so far (same `MemStats` the reference model
    /// reports).
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Drops entries whose fill time has passed (`fill_at <= now`) and
    /// recomputes the earliest remaining fill — exactly the reference
    /// model's `retain(|e| e.fill_at > now)`.
    fn retire_mshrs(&mut self, now: u64) {
        self.mshrs.retain(|e| e.fill_at > now);
        self.mshr_earliest = self
            .mshrs
            .iter()
            .map(|e| e.fill_at)
            .min()
            .unwrap_or(u64::MAX);
    }

    fn lower_levels(&mut self, addr: u64) -> (u32, Level) {
        if self.l2.access(addr) {
            return (self.config.l2.latency, Level::L2);
        }
        if let Some(l3) = &mut self.l3 {
            if l3.access(addr) {
                return (
                    self.config.l3.expect("l3 cache has config").latency,
                    Level::L3,
                );
            }
        }
        (self.config.mem_latency, Level::Memory)
    }

    /// A data read of the 8 bytes at `addr` issued at `now`. Returns
    /// the access answer plus the MSHR structural-stall cycles charged
    /// (the reference model exposes those only through stats deltas).
    #[inline]
    pub fn data_read(&mut self, addr: u64, now: u64) -> (Access, u64) {
        let mut issue_at = now;
        if !self.dtb.access(addr) {
            self.stats.dtb_misses += 1;
            issue_at += u64::from(self.config.tlb_miss_penalty);
        }
        let line = if self.l1d.line_pow2 {
            addr >> self.l1d.line_shift
        } else {
            addr / self.config.l1d.line
        };
        let mut mshr_stall = 0;
        if !self.mshrs.is_empty() {
            // Expired entries exist only when the earliest fill time has
            // passed; the reference model's per-access retain is a no-op
            // otherwise.
            if issue_at >= self.mshr_earliest {
                self.retire_mshrs(issue_at);
            }
            // A blocking cache serialises: any read issued under an
            // outstanding miss waits for every outstanding fill.
            if self.config.mshr_policy == MshrPolicy::Blocking && !self.mshrs.is_empty() {
                let free_at = self
                    .mshrs
                    .iter()
                    .map(|e| e.fill_at)
                    .max()
                    .expect("mshrs non-empty");
                mshr_stall += free_at - issue_at;
                self.stats.mshr_stall_cycles += free_at - issue_at;
                issue_at = free_at;
                self.mshrs.clear();
                self.mshr_earliest = u64::MAX;
            }
            if let Some(e) = self.mshrs.iter_mut().find(|e| e.line == line) {
                let (fill_at, level, was_prefetch) = (e.fill_at, e.level, e.prefetch);
                // A prefetch earns its keep at most once, however many
                // demand reads merge into its in-flight fill.
                e.prefetch = false;
                if was_prefetch {
                    self.stats.prefetch_useful += 1;
                }
                if self.config.mshr_policy == MshrPolicy::Merge {
                    self.stats.mshr_merges += 1;
                    self.l1d.access(addr); // touch for LRU
                    let ready_at = fill_at.max(issue_at + u64::from(self.config.l1d.latency));
                    return (
                        Access {
                            issue_at,
                            ready_at,
                            level,
                        },
                        mshr_stall,
                    );
                }
                // NoMerge: structural stall until the outstanding fill
                // frees the line, then fall through to the L1 lookup.
                mshr_stall += fill_at - issue_at;
                self.stats.mshr_stall_cycles += fill_at - issue_at;
                issue_at = fill_at;
                self.retire_mshrs(issue_at);
            }
        }
        if self.l1d.access(addr) {
            self.stats.l1d_hits += 1;
            return (
                Access {
                    issue_at,
                    ready_at: issue_at + u64::from(self.config.l1d.latency),
                    level: Level::L1,
                },
                mshr_stall,
            );
        }
        if self.mshrs.len() >= self.config.mshrs {
            let free_at = self.mshr_earliest;
            mshr_stall += free_at - issue_at;
            self.stats.mshr_stall_cycles += free_at - issue_at;
            issue_at = free_at;
            self.retire_mshrs(issue_at);
        }
        let (latency, level) = self.lower_levels(addr);
        match level {
            Level::L1 => self.stats.l1d_hits += 1,
            Level::L2 => self.stats.l2_hits += 1,
            Level::L3 => self.stats.l3_hits += 1,
            Level::Memory => self.stats.mem_reads += 1,
        }
        let ready_at = issue_at + u64::from(latency);
        self.mshrs.push(MshrEntry {
            line,
            fill_at: ready_at,
            level,
            prefetch: false,
        });
        self.mshr_earliest = self.mshr_earliest.min(ready_at);
        self.maybe_prefetch(addr, line, issue_at);
        (
            Access {
                issue_at,
                ready_at,
                level,
            },
            mshr_stall,
        )
    }

    /// The demand-miss hook of the L1D prefetcher — same decisions as
    /// the reference model's `maybe_prefetch`, line arithmetic done
    /// with the resolved shift.
    #[inline]
    fn maybe_prefetch(&mut self, addr: u64, line: u64, issue_at: u64) {
        let delta = match self.config.prefetch {
            PrefetchKind::None => return,
            PrefetchKind::NextLine => 1,
            PrefetchKind::Stride => match self.stride.observe(line) {
                Some(d) => d,
                None => return,
            },
        };
        let pf_line = line.wrapping_add(delta as u64);
        let pf_addr = pf_line.wrapping_mul(self.config.l1d.line);
        if pf_addr / self.config.page_size != addr / self.config.page_size {
            return;
        }
        if self.mshrs.len() >= self.config.mshrs
            || self.mshrs.iter().any(|e| e.line == pf_line)
            || self.l1d.contains(pf_addr)
        {
            return;
        }
        let (latency, level) = self.lower_levels(pf_addr);
        self.l1d.access(pf_addr); // allocate, exactly like a demand miss
        self.stats.prefetches += 1;
        let fill_at = issue_at + u64::from(latency);
        self.mshrs.push(MshrEntry {
            line: pf_line,
            fill_at,
            level,
            prefetch: true,
        });
        self.mshr_earliest = self.mshr_earliest.min(fill_at);
    }

    /// A data write of the 8 bytes at `addr` issued at `now`. Returns
    /// the access answer plus the write-buffer stall cycles charged.
    #[inline]
    pub fn data_write(&mut self, addr: u64, now: u64) -> (Access, u64) {
        self.stats.stores += 1;
        let mut issue_at = now;
        if !self.dtb.access(addr) {
            self.stats.dtb_misses += 1;
            issue_at += u64::from(self.config.tlb_miss_penalty);
        }
        let mut wb_stall = 0;
        if let Some(capacity) = self.config.write_buffer {
            self.write_buffer.retain(|&d| d > issue_at);
            if self.write_buffer.len() >= capacity as usize {
                let free_at = *self
                    .write_buffer
                    .iter()
                    .min()
                    .expect("write buffer non-empty");
                wb_stall = free_at - issue_at;
                self.stats.wb_stall_cycles += wb_stall;
                issue_at = free_at;
                self.write_buffer.retain(|&d| d > issue_at);
            }
            let start = self.write_buffer.iter().max().copied().unwrap_or(issue_at);
            self.write_buffer
                .push(start.max(issue_at) + u64::from(self.config.write_drain_cycles));
        }
        let hit = self.l1d.probe_update(addr);
        self.l2.probe_update(addr);
        if let Some(l3) = &mut self.l3 {
            l3.probe_update(addr);
        }
        let level = if hit { Level::L1 } else { Level::Memory };
        (
            Access {
                issue_at,
                ready_at: issue_at + 1,
                level,
            },
            wb_stall,
        )
    }

    /// An instruction fetch at code address `addr` issued at `now`.
    #[inline]
    pub fn inst_fetch(&mut self, addr: u64, now: u64) -> Access {
        if self.skip_ifetch {
            let idx = ((addr - self.code_base) >> self.icache.line_shift) as usize;
            if self.line_touched[idx / 64] & (1 << (idx % 64)) != 0 {
                // Proven resident: a guaranteed I-cache + ITB hit. The
                // reference model's hit path returns `ready_at ==
                // issue_at` and records nothing in `MemStats`; LRU
                // stamps are irrelevant because nothing can evict.
                return Access {
                    issue_at: now,
                    ready_at: now,
                    level: Level::L1,
                };
            }
            self.line_touched[idx / 64] |= 1 << (idx % 64);
        }
        let mut issue_at = now;
        if !self.itb.access(addr) {
            self.stats.itb_misses += 1;
            issue_at += u64::from(self.config.tlb_miss_penalty);
        }
        if self.icache.access(addr) {
            return Access {
                issue_at,
                ready_at: issue_at,
                level: Level::L1,
            };
        }
        self.stats.icache_misses += 1;
        let (latency, level) = self.lower_levels(addr);
        Access {
            issue_at,
            ready_at: issue_at + u64::from(latency),
            level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_mem::Hierarchy;
    use bsched_util::Prng;

    /// Replays a random interleaved access stream through both the
    /// reference hierarchy and `FastHier`, comparing every `Access`
    /// answer, every stall delta, and the final `MemStats` — across
    /// representative configurations (including a finite write buffer,
    /// a blocking cache, and a code segment too large for the fetch
    /// proof, which forces the exact fallback path).
    #[test]
    fn fast_hier_matches_reference_on_random_streams() {
        let base = MemConfig::alpha21164();
        let configs = [
            // 8 KB of code: exactly fills the 8 KB direct-mapped
            // I-cache, the proof's boundary case.
            ("alpha", base, 0x4000u64 + 8 * 1024),
            ("blocking", base.with_mshrs(1), 0x4000 + 8 * 1024),
            ("wb2", base.with_write_buffer(2), 0x4000 + 8 * 1024),
            // 64 KB of code on an 8 KB I-cache: conflict misses are
            // possible, so the static proof must reject the skip.
            ("big-code", base, 0x4000 + 64 * 1024),
            // The machine-zoo axes: prefetchers and MSHR policies.
            (
                "nextline",
                base.with_prefetch(PrefetchKind::NextLine),
                0x4000 + 8 * 1024,
            ),
            (
                "stride",
                base.with_prefetch(PrefetchKind::Stride),
                0x4000 + 8 * 1024,
            ),
            (
                "nomerge",
                base.with_mshr_policy(MshrPolicy::NoMerge),
                0x4000 + 8 * 1024,
            ),
            (
                "blocking-policy",
                base.with_mshr_policy(MshrPolicy::Blocking),
                0x4000 + 8 * 1024,
            ),
            // Everything at once: stride prefetch under a no-merge file
            // with a finite write buffer and 2 MSHRs.
            (
                "stride-nomerge-wb",
                base.with_prefetch(PrefetchKind::Stride)
                    .with_mshr_policy(MshrPolicy::NoMerge)
                    .with_mshrs(2)
                    .with_write_buffer(2),
                0x4000 + 8 * 1024,
            ),
        ];
        for (name, config, code_end) in configs {
            let code_base = 0x4000u64;
            let mut reference = Hierarchy::new(config);
            let mut fast = FastHier::new(config, code_base, code_end);
            if name == "big-code" {
                assert!(!fast.skip_ifetch, "64 KB of code cannot be conflict-free");
            } else {
                assert!(fast.skip_ifetch);
            }
            let mut rng = Prng::new(0xFA57_0001 + code_end);
            let mut now = 0u64;
            for step in 0..20_000 {
                match rng.index(8) {
                    // Reads: mostly a small hot set, sometimes far.
                    0..=3 => {
                        let addr = 0x10_0000 + rng.range_u64(0, 4096) * 8;
                        let before = reference.stats().mshr_stall_cycles;
                        let want = reference.data_read(addr, now);
                        let want_stall = reference.stats().mshr_stall_cycles - before;
                        let (got, got_stall) = fast.data_read(addr, now);
                        assert_eq!(got, want, "{name}: read step {step}");
                        assert_eq!(got_stall, want_stall, "{name}: read stall step {step}");
                    }
                    4 => {
                        let addr = rng.range_u64(0, 1 << 22);
                        let before = reference.stats().mshr_stall_cycles;
                        let want = reference.data_read(addr, now);
                        let want_stall = reference.stats().mshr_stall_cycles - before;
                        let (got, got_stall) = fast.data_read(addr, now);
                        assert_eq!(got, want, "{name}: far read step {step}");
                        assert_eq!(got_stall, want_stall);
                    }
                    5..=6 => {
                        let addr = 0x10_0000 + rng.range_u64(0, 4096) * 8;
                        let before = reference.stats().wb_stall_cycles;
                        let want = reference.data_write(addr, now);
                        let want_stall = reference.stats().wb_stall_cycles - before;
                        let (got, got_stall) = fast.data_write(addr, now);
                        assert_eq!(got, want, "{name}: write step {step}");
                        assert_eq!(got_stall, want_stall, "{name}: write stall step {step}");
                    }
                    _ => {
                        let addr = code_base + (rng.range_u64(0, (code_end - code_base) / 4)) * 4;
                        let want = reference.inst_fetch(addr, now);
                        let got = fast.inst_fetch(addr, now);
                        assert_eq!(got, want, "{name}: fetch step {step}");
                    }
                }
                now += rng.range_u64(0, 4);
                assert_eq!(fast.stats(), reference.stats(), "{name}: stats step {step}");
            }
        }
    }

    /// The sequential code-walk pattern the replay loop actually
    /// produces: repeated front-to-back sweeps must agree exactly
    /// (first sweep exercises the exact path, later sweeps the proven
    /// skip).
    #[test]
    fn fast_hier_matches_reference_on_code_sweeps() {
        let config = MemConfig::alpha21164();
        let (code_base, code_end) = (0x4000u64, 0x4000 + 2048);
        let mut reference = Hierarchy::new(config);
        let mut fast = FastHier::new(config, code_base, code_end);
        let mut now = 7;
        for _sweep in 0..3 {
            let mut pc = code_base;
            while pc < code_end {
                let want = reference.inst_fetch(pc, now);
                let got = fast.inst_fetch(pc, now);
                assert_eq!(got, want, "pc {pc:#x}");
                now = want.ready_at + 1;
                pc += 32; // one probe per line, as the skeleton batches
            }
        }
        assert_eq!(fast.stats(), reference.stats());
    }
}
