//! The per-run block cache: one lazily built [`Skeleton`] per basic
//! block, keyed by **block identity** (`BlockId` index).
//!
//! Identity keying is deliberate:
//!
//! * Programs are immutable for the lifetime of a run (there is no
//!   self-modifying code in the IR), so a skeleton can never go stale —
//!   the cache has no invalidation path at all, only lazy fills.
//! * Two blocks with identical instruction content still get separate
//!   skeletons ("cross-region reuse" is off): load sites and fetch
//!   addresses are absolute, so sharing a skeleton across addresses
//!   would corrupt per-site attribution and icache behaviour.

use super::skeleton::Skeleton;

/// Build/visit counters, exposed for the block-cache unit tests and the
/// engine's own invariant checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CacheStats {
    /// Skeletons built (one per distinct block visited).
    pub builds: u64,
    /// Block visits replayed.
    pub visits: u64,
}

/// The cache itself: a dense slot per block of the function, plus a
/// per-block visit counter so whole-run instruction totals can be
/// folded once at exit (`Σ visits × static counts`) instead of
/// accumulated on every visit.
#[derive(Debug)]
pub(crate) struct BlockCache {
    skeletons: Vec<Option<Skeleton>>,
    visits: Vec<u64>,
    builds: u64,
}

impl BlockCache {
    pub fn new(num_blocks: usize) -> Self {
        BlockCache {
            skeletons: vec![None; num_blocks],
            visits: vec![0; num_blocks],
            builds: 0,
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            builds: self.builds,
            visits: self.visits.iter().sum(),
        }
    }

    /// Returns the skeleton for block `index`, building it on first
    /// visit. Re-entry replays the cached skeleton; the caller is
    /// expected to debug-assert the block's size against
    /// [`Skeleton::n_insts`] per visit to enforce the
    /// no-self-modifying-code invariant the cache relies on.
    pub fn get_or_build(
        &mut self,
        index: usize,
        build: impl FnOnce() -> Skeleton,
    ) -> &Skeleton {
        self.visits[index] += 1;
        if self.skeletons[index].is_none() {
            self.skeletons[index] = Some(build());
            self.builds += 1;
        }
        self.skeletons[index]
            .as_ref()
            .expect("skeleton filled above")
    }

    /// Visited skeletons with their visit counts (skeletons are built
    /// on first visit, so every visited block has one).
    pub fn entries(&self) -> impl Iterator<Item = (&Skeleton, u64)> {
        self.skeletons
            .iter()
            .zip(&self.visits)
            .filter_map(|(sk, &n)| sk.as_ref().map(|sk| (sk, n)))
    }
}
