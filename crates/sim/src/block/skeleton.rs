//! Static per-block cost skeletons.
//!
//! A [`Skeleton`] captures everything the interpreting engine recomputes
//! on every instruction visit that is in fact a pure function of the
//! block's code, the code layout, and the simulator configuration:
//!
//! * operand and destination register **slots**, resolved into one
//!   unified index space (integer registers first, then floats), so the
//!   replay loop reads flat arrays instead of matching on register
//!   class;
//! * fixed **latencies**, with `uniform_fixed_latency` already folded
//!   in;
//! * static **load sites** (`(pc - CODE_BASE) / 4`) for interlock
//!   attribution;
//! * **fetch points** — the instruction slots that start a new icache
//!   line, so each visit issues one `inst_fetch` per line run instead of
//!   one per instruction (every skipped fetch is a guaranteed
//!   icache+ITB hit with `ready_at == issue_at`, so metrics are
//!   unchanged — see DESIGN.md §12);
//! * the whole-block dynamic **instruction-count delta**, terminator
//!   included;
//! * region base addresses for `LdAddr`, resolved to constants.

use crate::config::SimConfig;
use crate::machine::CODE_BASE;
use crate::metrics::InstCounts;
use bsched_ir::{interp::RegFile, Block, BlockId, BrCond, Op, Reg, RegClass, Terminator};

/// A register slot in the unified register/scoreboard arrays: integer
/// slots occupy `[0, ni)`, float slots `[ni, ni + nf)`.
pub(crate) type Slot = u32;

/// Resolves a register into its unified slot.
fn slot_of(r: Reg, ni: u32) -> Slot {
    let s = RegFile::slot(r) as u32;
    match r.class() {
        RegClass::Int => s,
        RegClass::Float => ni + s,
    }
}

/// Slot index of the always-ready **sentinel register**: one extra
/// slot past the real registers, permanently `ready_at == 0`, value 0,
/// and never blamed. Padding every `srcs` array to exactly three slots
/// with the sentinel lets the replay loop scan a fixed-width array
/// instead of a variable-length slice — the sentinel can never win the
/// order-sensitive blame rule (`0 > op_ready` is false, and its site is
/// `NO_SITE`).
pub(crate) fn sentinel_slot(ni: u32, nf: u32) -> Slot {
    ni + nf
}

/// One pre-decoded instruction, flattened so the replay loop does a
/// single dispatch on [`MicroOp::code`] and reads fixed-offset fields.
/// The multi-purpose fields keep the struct at 40 bytes:
///
/// * `imm` — for pure ops, the immediate operand **OR-folded** against
///   the second source: immediate-carrying ops leave `srcs[1]` at the
///   sentinel slot (whose value is permanently 0), so
///   `b = srcs[1].val | imm` selects the immediate branchlessly and the
///   plain-register case reads `imm == 0`. For `Ld`/`St` it is the
///   displacement; for `Li`/`FLi`/`LdAddr` the pre-resolved constant
///   bits (float immediates and region bases fold at decode time).
/// * `aux` — the fixed latency for pure ops and constants, the static
///   load site for `Ld`, unused for `St`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    /// Unified slots of the source operands, in operand order (the
    /// interlock blame rule is order-sensitive), padded to three with
    /// the [`sentinel_slot`]. `Ld` reads its base from `srcs[0]`, `St`
    /// its value from `srcs[0]` and base from `srcs[1]` (the IR operand
    /// order).
    pub srcs: [Slot; 3],
    /// Destination slot (the sentinel for `St`, which has none).
    pub dst: Slot,
    /// OR-folded immediate / displacement / resolved constant bits.
    pub imm: u64,
    /// Code address of this instruction slot.
    pub pc: u64,
    /// Latency (pure/constant) or load site (`Ld`).
    pub aux: u32,
    /// Dispatch code: the IR opcode, with `LdAddr` repurposed as
    /// "write constant `imm`" (the region base resolves at decode).
    pub code: Op,
    /// Occupies a memory port in its issue group.
    pub is_memory: bool,
    /// Starts a new icache line: issue an `inst_fetch` at `pc` before
    /// this op. Always false when `model_ifetch` is off.
    pub fetch: bool,
    /// Operand interlock **must be checked**. False only when every
    /// source is statically proven ready on a single-issue machine:
    /// each is the sentinel or was defined *earlier in this block* by a
    /// pure op of latency ≤ 1. Single-issue replay issues every
    /// instruction at least one cycle after its predecessor (fetch
    /// stalls and interlocks only push `now` further forward), so such
    /// a source's `ready = def_now + 1 ≤ use_now` — the scan can never
    /// find a stall and is skipped. Wide machines issue several
    /// instructions in one cycle, breaking the `+1` argument, so the
    /// replay loop honours this flag **only** at `issue_width == 1`.
    pub chk: bool,
}

/// A decoded terminator.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TermKind {
    Jmp {
        target: BlockId,
    },
    Br {
        cond: Slot,
        when: BrCond,
        taken: BlockId,
        fall: BlockId,
    },
    Ret,
}

/// The static cost skeleton of one basic block.
#[derive(Debug, Clone)]
pub(crate) struct Skeleton {
    pub micros: Vec<MicroOp>,
    /// Instruction count of the block body (fuel units; terminator
    /// excluded, matching the interpreter).
    pub n_insts: u64,
    /// Whole-block dynamic instruction-count delta, terminator included.
    pub counts: InstCounts,
    pub term: TermKind,
    /// Code address of the terminator slot.
    pub term_pc: u64,
    /// The terminator starts a new icache line relative to the last
    /// instruction of the block (or the block is empty). Always false
    /// when `model_ifetch` is off.
    pub term_fetch: bool,
    /// The branch condition's interlock must be checked (see
    /// [`MicroOp::chk`]). The branch reads its condition at the *last
    /// instruction's* issue cycle — before the group-ending `+1` — so
    /// the proof additionally requires the condition **not** to be
    /// defined by the last instruction of the block (whose result is
    /// ready one cycle later). Meaningless for `Jmp`/`Ret`.
    pub br_chk: bool,
}

/// Decodes `block` (based at `base_pc`) into its skeleton.
///
/// `region_bases` are the run's resolved region base addresses (fixed
/// for the lifetime of the run, so `LdAddr` folds to a constant); `ni`
/// is the number of integer register slots (the float-slot offset).
pub(crate) fn build(
    block: &Block,
    base_pc: u64,
    config: &SimConfig,
    region_bases: &[u64],
    ni: u32,
    sentinel: Slot,
) -> Skeleton {
    let line = config.mem.icache.line.max(1);
    let fixed_latency = |op: Op| -> u32 {
        if config.uniform_fixed_latency {
            1
        } else {
            op.latency()
        }
    };

    let mut counts = InstCounts::default();
    let mut micros = Vec::with_capacity(block.insts.len());
    let mut prev_line = u64::MAX; // sentinel: the first slot always fetches
    // Per-slot "proven ready" state for the interlock-elision proof
    // (`MicroOp::chk`): a slot is fast once this block redefines it with
    // a pure op of latency ≤ 1. Live-ins are conservatively slow (their
    // ready time is unknown at decode); the sentinel is permanently
    // ready.
    let mut fast = vec![false; sentinel as usize + 1];
    fast[sentinel as usize] = true;
    for (k, inst) in block.insts.iter().enumerate() {
        counts.record(inst);
        let pc = base_pc + 4 * k as u64;
        let fetch = config.model_ifetch && pc / line != prev_line;
        if fetch {
            prev_line = pc / line;
        }
        let mut srcs = [sentinel; 3];
        for (s, &r) in srcs.iter_mut().zip(inst.srcs()) {
            *s = slot_of(r, ni);
        }
        let (dst, imm, aux) = match inst.op {
            Op::Ld => (
                slot_of(inst.dst.expect("load has a destination"), ni),
                inst.mem_disp() as u64,
                ((pc - CODE_BASE) / 4) as u32,
            ),
            Op::St => (sentinel, inst.mem_disp() as u64, 0),
            Op::LdAddr => {
                let region = inst
                    .mem
                    .and_then(|mm| mm.region)
                    .expect("ldaddr has a region");
                (
                    slot_of(inst.dst.expect("ldaddr has a destination"), ni),
                    region_bases[region.index() as usize],
                    fixed_latency(inst.op),
                )
            }
            Op::FLi => (
                slot_of(inst.dst.expect("fli has a destination"), ni),
                inst.fimm.to_bits(),
                fixed_latency(inst.op),
            ),
            op => {
                // The OR-fold below requires the immediate's slot to be
                // the always-zero sentinel.
                debug_assert!(
                    inst.imm.is_none() || inst.srcs().len() <= 1,
                    "immediate with a second register operand: {inst}"
                );
                (
                    slot_of(inst.dst.expect("pure op has a destination"), ni),
                    inst.imm.unwrap_or(0) as u64,
                    fixed_latency(op),
                )
            }
        };
        let chk = srcs.iter().any(|&s| !fast[s as usize]);
        match inst.op {
            Op::St => {} // no destination (dst is the sentinel slot)
            Op::Ld => fast[dst as usize] = false,
            _ => fast[dst as usize] = aux <= 1,
        }
        micros.push(MicroOp {
            srcs,
            dst,
            imm,
            pc,
            aux,
            code: inst.op,
            is_memory: inst.op.is_memory(),
            fetch,
            chk,
        });
    }

    let term_pc = base_pc + 4 * block.len() as u64;
    let mut br_chk = false;
    let term = match &block.term {
        Terminator::Jmp(t) => {
            counts.jumps += 1;
            TermKind::Jmp { target: *t }
        }
        Terminator::Br {
            cond,
            when,
            taken,
            fall,
        } => {
            counts.branches += 1;
            let cond = slot_of(*cond, ni);
            // The branch reads `cond` at the last instruction's issue
            // cycle, so a definition *by the last instruction* is ready
            // one cycle too late even at latency 1 — the elision proof
            // needs the definition at distance ≥ 1.
            br_chk = !fast[cond as usize]
                || micros.last().is_some_and(|mo| mo.dst == cond);
            TermKind::Br {
                cond,
                when: *when,
                taken: *taken,
                fall: *fall,
            }
        }
        Terminator::Ret => TermKind::Ret,
    };

    Skeleton {
        n_insts: block.insts.len() as u64,
        counts,
        micros,
        term,
        term_pc,
        term_fetch: config.model_ifetch && term_pc / line != prev_line,
        br_chk,
    }
}
