//! Engine-equivalence suite: the block-compiled engine must reproduce
//! the interpreting engine **bit for bit** — metrics, checksum, and
//! per-load-site trace attribution — across hand-built programs,
//! lowered workload kernels, and the whole machine-configuration space.

use bsched_ir::{BrCond, ExecError, FuncBuilder, Op, Program};
use bsched_sim::{SimConfig, SimEngine, SimResult, Simulator};

/// A simulator for an ad-hoc machine description.
fn sim<'p>(p: &'p bsched_ir::Program, config: SimConfig) -> Simulator<'p> {
    Simulator::for_machine(p, &bsched_sim::MachineSpec::custom(config))
}
use bsched_util::Prng;
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};
use std::sync::Mutex;

/// The trace recorder is process-global; traced tests serialize here.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn run_engine(p: &Program, cfg: SimConfig, engine: SimEngine) -> Result<SimResult, ExecError> {
    sim(p, cfg).with_engine(engine).run()
}

fn assert_engines_agree(p: &Program, cfg: SimConfig, what: &str) {
    let interp = run_engine(p, cfg, SimEngine::Interpret).unwrap();
    let block = run_engine(p, cfg, SimEngine::BlockCompiled).unwrap();
    assert_eq!(interp.metrics, block.metrics, "{what}: metrics diverged");
    assert_eq!(
        interp.checksum, block.checksum,
        "{what}: checksum diverged"
    );
}

/// The machine-configuration axes the grid exercises, plus corners.
fn config_space() -> Vec<(&'static str, SimConfig)> {
    use bsched_mem::{MshrPolicy, PrefetchKind};
    use bsched_sim::PredictorKind;
    let base = SimConfig::default();
    vec![
        ("default", base),
        ("no-ifetch", base.with_ifetch(false)),
        ("blocking", base.with_mshrs(1)),
        ("width2", base.with_issue(2, 1)),
        ("width4", base.with_issue(4, 2)),
        ("width4-ports4", base.with_ifetch(false).with_issue(4, 4)),
        ("simple-1993", base.simple_model_1993()),
        ("gshare", base.with_predictor(PredictorKind::Gshare)),
        ("tage", base.with_predictor(PredictorKind::TageLite)),
        ("nextline-pf", base.with_prefetch(PrefetchKind::NextLine)),
        ("stride-pf", base.with_prefetch(PrefetchKind::Stride)),
        ("nomerge-mshr", base.with_mshr_policy(MshrPolicy::NoMerge)),
        ("blocking-mshr", base.with_mshr_policy(MshrPolicy::Blocking)),
    ]
}

/// Every registered machine must also be engine-bit-identical.
#[test]
fn registered_machines_are_engine_identical() {
    let p = loop_program();
    for info in bsched_sim::MachineSpec::registry() {
        let m = bsched_sim::MachineSpec::named(info.name).unwrap();
        assert_engines_agree(&p, m.config(), info.name);
    }
}

/// load; gap of independent fmuls; dependent fadd; stores.
fn load_use_program(gap_ops: usize) -> Program {
    let mut p = Program::new("lu");
    let r = p.add_region("a", 4096);
    let mut b = FuncBuilder::new("main");
    let base = b.load_region_addr(r);
    let x = b.load_f(base, 0).with_region(r).emit(&mut b);
    let mut acc = b.fconst(1.0);
    for _ in 0..gap_ops {
        acc = b.binop(Op::FMul, acc, acc);
    }
    let y = b.binop(Op::FAdd, x, x);
    b.store(y, base, 8).with_region(r).emit(&mut b);
    b.store(acc, base, 16).with_region(r).emit(&mut b);
    b.ret();
    p.set_main(b.finish());
    p
}

/// Eight back-to-back cold-miss loads feeding a reduction.
fn many_miss_program() -> Program {
    let mut p = Program::new("8m");
    let r = p.add_region("a", 4096);
    let mut b = FuncBuilder::new("main");
    let base = b.load_region_addr(r);
    let mut acc = b.fconst(0.0);
    let loads: Vec<_> = (0..8)
        .map(|k| b.load_f(base, k * 64).with_region(r).emit(&mut b))
        .collect();
    for x in loads {
        acc = b.binop(Op::FAdd, acc, x);
    }
    b.store(acc, base, 8).with_region(r).emit(&mut b);
    b.ret();
    p.set_main(b.finish());
    p
}

/// for i in 0..50 { sum += i } — loops, branch prediction, re-entry.
fn loop_program() -> Program {
    let mut p = Program::new("loop");
    let out = p.add_region("out", 8);
    let mut b = FuncBuilder::new("main");
    let header = b.add_block();
    let body = b.add_block();
    let exit = b.add_block();
    let i = b.iconst(0);
    let sum = b.iconst(0);
    let n = b.iconst(50);
    let base = b.load_region_addr(out);
    b.jmp(header);
    b.switch_to(header);
    let c = b.binop(Op::CmpLt, i, n);
    b.br(c, BrCond::Zero, exit, body);
    b.switch_to(body);
    b.push(bsched_ir::Inst::op(Op::Add, sum, &[sum, i]));
    b.push(bsched_ir::Inst::op_imm(Op::Add, i, i, 1));
    b.jmp(header);
    b.switch_to(exit);
    b.store(sum, base, 0).with_region(out).emit(&mut b);
    b.ret();
    p.set_main(b.finish());
    p
}

/// An fdiv chain — fixed-latency interlock attribution.
fn fdiv_program() -> Program {
    let mut p = Program::new("div");
    let r = p.add_region("a", 64);
    let mut b = FuncBuilder::new("main");
    let base = b.load_region_addr(r);
    let x = b.fconst(10.0);
    let y = b.fconst(4.0);
    let q1 = b.binop(Op::FDivD, x, y);
    let q2 = b.binop(Op::FDivD, q1, y);
    b.store(q2, base, 0).with_region(r).emit(&mut b);
    b.ret();
    p.set_main(b.finish());
    p
}

/// Independent integer chains — multi-issue grouping.
fn ilp_program() -> Program {
    let mut p = Program::new("ilp");
    let r = p.add_region("a", 512);
    let mut b = FuncBuilder::new("main");
    let base = b.load_region_addr(r);
    let mut accs = Vec::new();
    for k in 0..8 {
        let x = b.iconst(k);
        let y = b.binop_imm(Op::Add, x, 1);
        let z = b.binop_imm(Op::Add, y, 2);
        accs.push(z);
    }
    let mut total = accs[0];
    for &a in &accs[1..] {
        total = b.binop(Op::Add, total, a);
    }
    b.store(total, base, 0).with_region(r).emit(&mut b);
    b.ret();
    p.set_main(b.finish());
    p
}

/// Sixteen independent stores — memory-port limits + write traffic.
fn store_program() -> Program {
    let mut p = Program::new("stports");
    let r = p.add_region("a", 4096);
    let mut b = FuncBuilder::new("main");
    let base = b.load_region_addr(r);
    let v = b.fconst(1.0);
    for k in 0..16 {
        b.store(v, base, k * 8).with_region(r).emit(&mut b);
    }
    b.ret();
    p.set_main(b.finish());
    p
}

/// A lowered workload kernel: a[i] = a[i] * 1.25 + a[i+1].
fn stream(n: i64, seed: u64) -> Program {
    let mut k = Kernel::new("s");
    let a = k.array("a", n as u64 + 8, ArrayInit::Random(seed));
    let i = k.int_var("i");
    let body = vec![k.store(
        a,
        Index::of(i),
        Expr::load(a, Index::of(i)) * Expr::Float(1.25) + Expr::load(a, Index::of_plus(i, 1)),
    )];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
    k.lower()
}

#[test]
fn engines_agree_on_every_program_and_config() {
    let programs: Vec<(&str, Program)> = vec![
        ("load-use-0", load_use_program(0)),
        ("load-use-12", load_use_program(12)),
        ("many-miss", many_miss_program()),
        ("loop", loop_program()),
        ("fdiv", fdiv_program()),
        ("ilp", ilp_program()),
        ("stores", store_program()),
    ];
    for (name, p) in &programs {
        for (cfg_name, cfg) in config_space() {
            assert_engines_agree(p, cfg, &format!("{name} × {cfg_name}"));
        }
    }
}

#[test]
fn engines_agree_on_seeded_workload_kernels() {
    let mut rng = Prng::new(0xE9_0001);
    for case in 0..16 {
        let n = rng.range_i64(1, 96);
        let seed = rng.range_u64(0, 1000);
        let width = [1u32, 2, 4][rng.index(3)];
        let mshrs = [1usize, 6][rng.index(2)];
        let ifetch = rng.coin();
        let p = stream(n, seed);
        let cfg = SimConfig::default()
            .with_issue(width, (width / 2).max(1))
            .with_mshrs(mshrs)
            .with_ifetch(ifetch);
        assert_engines_agree(&p, cfg, &format!("stream case {case} (n {n}, seed {seed})"));
    }
}

/// The deprecated `Simulator::new` shim pins the interpreting engine
/// and must keep producing exactly what the engine-agnostic API does.
#[test]
#[allow(deprecated)]
fn deprecated_new_shim_matches_the_engine_agnostic_api() {
    let p = loop_program();
    let cfg = SimConfig::default();
    let shim = Simulator::new(&p, cfg);
    assert_eq!(shim.engine(), SimEngine::Interpret);
    let old = shim.run().unwrap();
    let new = run_engine(&p, cfg, SimEngine::Interpret).unwrap();
    assert_eq!(old.metrics, new.metrics);
    assert_eq!(old.checksum, new.checksum);
}

#[test]
fn engines_agree_on_fuel_exhaustion() {
    let mut p = Program::new("spin");
    let mut b = FuncBuilder::new("main");
    let e = b.current_block();
    let _ = b.iconst(0);
    b.jmp(e);
    p.set_main(b.finish());
    let cfg = SimConfig {
        fuel: 10,
        ..Default::default()
    };
    for engine in SimEngine::ALL {
        assert!(
            matches!(
                run_engine(&p, cfg, engine),
                Err(ExecError::OutOfFuel { fuel: 10 })
            ),
            "{engine}: expected OutOfFuel {{ fuel: 10 }}"
        );
    }
}

/// Per-load-site trace attribution is part of the bit-identity
/// contract: the `sim.load_site` and `sim.run` event streams (labels
/// and payloads; timestamps excluded) must match across engines.
#[test]
fn trace_attribution_is_identical_across_engines() {
    let _serial = TRACE_LOCK.lock().unwrap();
    let programs = [
        ("many-miss", many_miss_program()),
        ("loop", loop_program()),
        ("stream", stream(64, 7)),
    ];
    for (name, p) in &programs {
        for (cfg_name, cfg) in config_space() {
            let mut captures = Vec::new();
            for engine in SimEngine::ALL {
                let (result, events) =
                    bsched_trace::capture(|| run_engine(p, cfg, engine).unwrap());
                let normalized: Vec<_> = events
                    .iter()
                    .filter(|e| {
                        e.id == bsched_trace::points::SIM_LOAD_SITE
                            || e.id == bsched_trace::points::SIM_RUN
                    })
                    .map(|e| (e.id, e.label.clone(), e.args.clone()))
                    .collect();
                captures.push((result, normalized));
            }
            let (interp, block) = (&captures[0], &captures[1]);
            assert_eq!(
                interp.0.metrics, block.0.metrics,
                "{name} × {cfg_name}: traced metrics diverged"
            );
            assert_eq!(
                interp.1, block.1,
                "{name} × {cfg_name}: trace attribution diverged"
            );
        }
    }
}
