//! Property tests for the sampled-simulation subsystem: the seeded
//! k-means clusterer ([`bsched_sim::sample::kmeans`]) and the
//! end-to-end sampled mode. Cases come from the workspace's seeded
//! [`Prng`], so every run exercises the same inputs.

use bsched_sim::sample::kmeans::{cluster, Clustering};
use bsched_sim::{SampleConfig, SimConfig, SimMode, Simulator};

/// A simulator for an ad-hoc machine description.
fn sim<'p>(p: &'p bsched_ir::Program, config: SimConfig) -> Simulator<'p> {
    Simulator::for_machine(p, &bsched_sim::MachineSpec::custom(config))
}
use bsched_util::Prng;
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};

/// Random BBV-shaped inputs: `n` L1-normalized non-negative vectors of
/// width `dim`, plus positive per-interval sizes.
fn random_bbvs(rng: &mut Prng, n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<u64>) {
    let mut bbvs = Vec::with_capacity(n);
    let mut sizes = Vec::with_capacity(n);
    for _ in 0..n {
        let mut v: Vec<f64> = (0..dim).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let total: f64 = v.iter().sum();
        if total > 0.0 {
            for x in &mut v {
                *x /= total;
            }
        }
        bbvs.push(v);
        sizes.push(rng.range_u64(1, 5000));
    }
    (bbvs, sizes)
}

#[test]
fn clustering_is_deterministic_across_runs_and_threads() {
    let mut rng = Prng::new(0x5A3_0001);
    for case in 0..16 {
        let n = rng.index(60) + 1;
        let dim = rng.index(24) + 1;
        let k = rng.index(10) + 1;
        let seed = rng.next_u64();
        let (bbvs, sizes) = random_bbvs(&mut rng, n, dim);

        let reference = cluster(&bbvs, &sizes, k, seed);
        let again = cluster(&bbvs, &sizes, k, seed);
        assert_eq!(reference, again, "case {case}: same-thread rerun diverged");

        // Determinism must not depend on which thread runs the
        // clustering (no thread-locals, no ambient state).
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (bbvs, sizes) = (bbvs.clone(), sizes.clone());
                std::thread::spawn(move || cluster(&bbvs, &sizes, k, seed))
            })
            .collect();
        for h in handles {
            let c: Clustering = h.join().expect("clustering thread panicked");
            assert_eq!(reference, c, "case {case}: cross-thread run diverged");
        }
    }
}

#[test]
fn every_interval_is_assigned_to_a_live_cluster() {
    let mut rng = Prng::new(0x5A3_0002);
    for case in 0..32 {
        let n = rng.index(80) + 1;
        let dim = rng.index(30) + 1;
        let k = rng.index(12) + 1;
        let seed = rng.next_u64();
        let (bbvs, sizes) = random_bbvs(&mut rng, n, dim);
        let c = cluster(&bbvs, &sizes, k, seed);

        assert_eq!(c.assignment.len(), n, "case {case}");
        assert!(c.k() >= 1 && c.k() <= k.min(n), "case {case}: k() = {}", c.k());
        let mut member_count = vec![0usize; c.k()];
        for (i, &cl) in c.assignment.iter().enumerate() {
            assert!(cl < c.k(), "case {case}: interval {i} assigned to dropped cluster {cl}");
            member_count[cl] += 1;
        }
        for (cl, &count) in member_count.iter().enumerate() {
            assert!(count > 0, "case {case}: cluster {cl} is empty but was not dropped");
        }
        // Each representative is a member of the cluster it represents.
        for (cl, &rep) in c.reps.iter().enumerate() {
            assert_eq!(c.assignment[rep], cl, "case {case}");
        }
    }
}

#[test]
fn weights_are_positive_and_sum_to_one() {
    let mut rng = Prng::new(0x5A3_0003);
    for case in 0..32 {
        let n = rng.index(80) + 1;
        let dim = rng.index(30) + 1;
        let k = rng.index(12) + 1;
        let seed = rng.next_u64();
        let (bbvs, sizes) = random_bbvs(&mut rng, n, dim);
        let c = cluster(&bbvs, &sizes, k, seed);

        assert!(c.weights.iter().all(|&w| w > 0.0), "case {case}: {:?}", c.weights);
        let sum: f64 = c.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "case {case}: weights sum to {sum}");
    }
}

#[test]
fn k_larger_than_n_degrades_to_one_cluster_per_interval() {
    let mut rng = Prng::new(0x5A3_0004);
    for case in 0..16 {
        let n = rng.index(12) + 1;
        let dim = rng.index(8) + 1;
        let (bbvs, sizes) = random_bbvs(&mut rng, n, dim);
        for extra in [0, 1, 7, 1000] {
            let c = cluster(&bbvs, &sizes, n + extra, case as u64);
            assert_eq!(c.k(), n, "case {case} (+{extra})");
            assert_eq!(c.assignment, (0..n).collect::<Vec<_>>(), "case {case} (+{extra})");
            assert_eq!(c.reps, (0..n).collect::<Vec<_>>(), "case {case} (+{extra})");
        }
    }
}

fn stream(n: i64, seed: u64) -> bsched_ir::Program {
    let mut k = Kernel::new("s");
    let a = k.array("a", n as u64 + 8, ArrayInit::Random(seed));
    let i = k.int_var("i");
    let body = vec![k.store(
        a,
        Index::of(i),
        Expr::load(a, Index::of(i)) * Expr::Float(1.25) + Expr::load(a, Index::of_plus(i, 1)),
    )];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
    k.lower()
}

#[test]
fn sampled_runs_report_exact_functional_results() {
    let mut rng = Prng::new(0x5A3_0005);
    for case in 0..12 {
        let n = rng.range_i64(4, 120);
        let seed = rng.range_u64(0, 1000);
        let p = stream(n, seed);
        let exact = sim(&p, SimConfig::default()).run().unwrap();
        let sample = SampleConfig {
            interval: [64, 256, 1024][rng.index(3)],
            k: [1, 2, 4, 8][rng.index(4)],
            reps: [1, 2, 4][rng.index(3)],
            seed: rng.next_u64(),
        };
        let sampled = sim(&p, SimConfig::default())
            .with_mode(SimMode::Sampled(sample))
            .run()
            .unwrap();
        // Instruction counts and the memory checksum come from the exact
        // functional profile — bit-equal to the exact engines, always.
        assert_eq!(sampled.checksum, exact.checksum, "case {case} ({sample})");
        assert_eq!(sampled.metrics.insts, exact.metrics.insts, "case {case} ({sample})");
        let stats = sampled.sample.expect("sampled run reports stats");
        assert!(stats.clusters >= 1 && stats.clusters <= stats.intervals, "case {case}");
        assert!(stats.sampled_insts <= stats.total_insts, "case {case}");
        assert!(sampled.metrics.cycles > 0, "case {case}");
    }
}

#[test]
fn sampled_runs_are_deterministic() {
    let p = stream(64, 7);
    let sample = SampleConfig::default();
    let cfg = SimConfig::default();
    let run = |_: u32| {
        sim(&p, cfg)
            .with_mode(SimMode::Sampled(sample))
            .run()
            .unwrap()
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.sample, b.sample);
}
