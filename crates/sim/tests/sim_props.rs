//! Randomized property tests for the timing simulator: functional
//! behaviour is configuration-independent, and timing responds sanely
//! to machine parameters. Cases come from the workspace's seeded
//! [`Prng`].

use bsched_ir::{Interp, Program};
use bsched_sim::{SimConfig, Simulator};

/// A simulator for an ad-hoc machine description.
fn sim<'p>(p: &'p bsched_ir::Program, config: SimConfig) -> Simulator<'p> {
    Simulator::for_machine(p, &bsched_sim::MachineSpec::custom(config))
}
use bsched_util::Prng;
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};

fn stream(n: i64, seed: u64) -> Program {
    let mut k = Kernel::new("s");
    let a = k.array("a", n as u64 + 8, ArrayInit::Random(seed));
    let i = k.int_var("i");
    let body = vec![k.store(
        a,
        Index::of(i),
        Expr::load(a, Index::of(i)) * Expr::Float(1.25) + Expr::load(a, Index::of_plus(i, 1)),
    )];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
    k.lower()
}

#[test]
fn timing_configs_never_change_functional_results() {
    let mut rng = Prng::new(0x51A_0001);
    for case in 0..24 {
        let n = rng.range_i64(1, 96);
        let seed = rng.range_u64(0, 1000);
        let width = [1u32, 2, 4][rng.index(3)];
        let mshrs = [1usize, 6][rng.index(2)];
        let ifetch = rng.coin();
        let p = stream(n, seed);
        let reference = Interp::new(&p).run().unwrap().checksum;
        let cfg = SimConfig::default()
            .with_issue(width, (width / 2).max(1))
            .with_mshrs(mshrs)
            .with_ifetch(ifetch);
        let sim = sim(&p, cfg).run().unwrap();
        assert_eq!(sim.checksum, reference, "case {case} (n {n}, seed {seed})");
        assert!(
            sim.metrics.cycles >= sim.metrics.insts.total() / u64::from(width).max(1),
            "case {case} (n {n}, seed {seed})"
        );
    }
}

#[test]
fn wider_issue_never_slows_down() {
    let mut rng = Prng::new(0x51A_0002);
    for case in 0..24 {
        let n = rng.range_i64(8, 96);
        let seed = rng.range_u64(0, 100);
        let p = stream(n, seed);
        let base = SimConfig::default().with_ifetch(false);
        let w1 = sim(&p, base).run().unwrap().metrics.cycles;
        let w4 = sim(&p, base.with_issue(4, 2))
            .run()
            .unwrap()
            .metrics
            .cycles;
        assert!(w4 <= w1, "case {case}: width 4 {w4} vs width 1 {w1}");
    }
}

#[test]
fn more_mshrs_never_slow_down() {
    let mut rng = Prng::new(0x51A_0003);
    for case in 0..24 {
        let n = rng.range_i64(8, 96);
        let seed = rng.range_u64(0, 100);
        let p = stream(n, seed);
        let base = SimConfig::default().with_ifetch(false);
        let m1 = sim(&p, base.with_mshrs(1))
            .run()
            .unwrap()
            .metrics
            .cycles;
        let m6 = sim(&p, base.with_mshrs(6))
            .run()
            .unwrap()
            .metrics
            .cycles;
        assert!(m6 <= m1, "case {case}: 6 MSHRs {m6} vs 1 MSHR {m1}");
    }
}

#[test]
fn cycle_accounting_is_complete() {
    let mut rng = Prng::new(0x51A_0004);
    for case in 0..24 {
        let n = rng.range_i64(4, 64);
        let seed = rng.range_u64(0, 100);
        // Interlocks + penalties never exceed total cycles.
        let p = stream(n, seed);
        let m = sim(&p, SimConfig::default())
            .run()
            .unwrap()
            .metrics;
        let accounted = m.load_interlock
            + m.fixed_interlock
            + m.branch_penalty
            + m.store_stall
            + m.fetch_stall
            + m.tlb_stall;
        assert!(accounted <= m.cycles, "case {case}: {m:?}");
    }
}
