//! Property tests for the timing simulator: functional behaviour is
//! configuration-independent, and timing responds sanely to machine
//! parameters.

use bsched_ir::{Interp, Program};
use bsched_sim::{SimConfig, Simulator};
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};
use proptest::prelude::*;

fn stream(n: i64, seed: u64) -> Program {
    let mut k = Kernel::new("s");
    let a = k.array("a", n as u64 + 8, ArrayInit::Random(seed));
    let i = k.int_var("i");
    let body = vec![k.store(
        a,
        Index::of(i),
        Expr::load(a, Index::of(i)) * Expr::Float(1.25) + Expr::load(a, Index::of_plus(i, 1)),
    )];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
    k.lower()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn timing_configs_never_change_functional_results(
        n in 1i64..96,
        seed in 0u64..1000,
        width in prop_oneof![Just(1u32), Just(2), Just(4)],
        mshrs in prop_oneof![Just(1usize), Just(6)],
        ifetch in any::<bool>(),
    ) {
        let p = stream(n, seed);
        let reference = Interp::new(&p).run().unwrap().checksum;
        let cfg = SimConfig::default()
            .with_issue_width(width)
            .with_mshrs(mshrs)
            .with_ifetch(ifetch);
        let sim = Simulator::new(&p, cfg).run().unwrap();
        prop_assert_eq!(sim.checksum, reference);
        prop_assert!(sim.metrics.cycles >= sim.metrics.insts.total() / u64::from(width).max(1));
    }

    #[test]
    fn wider_issue_never_slows_down(n in 8i64..96, seed in 0u64..100) {
        let p = stream(n, seed);
        let base = SimConfig::default().with_ifetch(false);
        let w1 = Simulator::new(&p, base).run().unwrap().metrics.cycles;
        let w4 = Simulator::new(&p, base.with_issue_width(4)).run().unwrap().metrics.cycles;
        prop_assert!(w4 <= w1, "width 4 {} vs width 1 {}", w4, w1);
    }

    #[test]
    fn more_mshrs_never_slow_down(n in 8i64..96, seed in 0u64..100) {
        let p = stream(n, seed);
        let base = SimConfig::default().with_ifetch(false);
        let m1 = Simulator::new(&p, base.with_mshrs(1)).run().unwrap().metrics.cycles;
        let m6 = Simulator::new(&p, base.with_mshrs(6)).run().unwrap().metrics.cycles;
        prop_assert!(m6 <= m1, "6 MSHRs {} vs 1 MSHR {}", m6, m1);
    }

    #[test]
    fn cycle_accounting_is_complete(n in 4i64..64, seed in 0u64..100) {
        // Interlocks + penalties never exceed total cycles.
        let p = stream(n, seed);
        let m = Simulator::new(&p, SimConfig::default()).run().unwrap().metrics;
        let accounted = m.load_interlock
            + m.fixed_interlock
            + m.branch_penalty
            + m.store_stall
            + m.fetch_stall
            + m.tlb_stall;
        prop_assert!(accounted <= m.cycles, "{:?}", m);
    }
}
