//! Lowering from the loop-language AST to the canonical counted-loop IR.
//!
//! Shape contract (consumed by `bsched-opt`'s unroller and peeler):
//!
//! ```text
//! preheader: ... counter = lo; bound = hi; jmp header
//! header:    t = cmplt counter, bound
//!            br.z t -> exit, fall -> first body block
//! body...:   (may contain ifs and nested loops)
//! latch:     counter = add counter, #step; jmp header
//! ```
//!
//! Every `for` also registers a [`bsched_ir::CountedLoop`] with correct
//! parent links.

use super::ast::{ArrId, BinOp, CmpOp, Expr, Index, ScalarTy, Stmt, VarId};
use super::{ArrayInit, Kernel};
use bsched_ir::{
    Bound, BrCond, CountedLoop, FuncBuilder, Inst, Op, Program, Reg, RegClass, Region, RegionId,
};
use bsched_util::Prng;

struct Lowerer<'k> {
    k: &'k Kernel,
    b: FuncBuilder,
    var_regs: Vec<Reg>,
    arr_base: Vec<Reg>,
    arr_region: Vec<RegionId>,
    loop_stack: Vec<usize>,
}

/// Lowers a kernel to a whole program. See the module docs for the shape
/// contract.
///
/// # Panics
///
/// Panics on AST type errors.
#[must_use]
pub fn lower_kernel(k: &Kernel) -> Program {
    let mut program = Program::new(k.name.clone());
    let mut arr_region = Vec::new();
    for a in &k.arrays {
        let values = gen_init(a.elems, &a.init);
        arr_region.push(program.push_region(Region::from_f64s(a.name.clone(), &values)));
    }

    let mut b = FuncBuilder::new("main");
    let var_regs: Vec<Reg> = k
        .scalars
        .iter()
        .map(|(_, ty)| {
            b.new_reg(match ty {
                ScalarTy::Int => RegClass::Int,
                ScalarTy::Float => RegClass::Float,
            })
        })
        .collect();
    let arr_base: Vec<Reg> = arr_region.iter().map(|&r| b.load_region_addr(r)).collect();

    let mut lw = Lowerer {
        k,
        b,
        var_regs,
        arr_base,
        arr_region,
        loop_stack: Vec::new(),
    };
    lw.stmts(&k.stmts);
    lw.b.ret();
    program.set_main(lw.b.finish());
    program
}

fn gen_init(elems: u64, init: &ArrayInit) -> Vec<f64> {
    let n = elems as usize;
    match init {
        ArrayInit::Zero => vec![0.0; n],
        ArrayInit::Ramp(start, step) => (0..n).map(|i| start + step * i as f64).collect(),
        ArrayInit::Random(seed) => {
            let mut rng = Prng::new(*seed);
            (0..n).map(|_| rng.next_f64() + f64::EPSILON).collect()
        }
        ArrayInit::Values(v) => {
            let mut out = v.clone();
            out.resize(n, 0.0);
            out
        }
    }
}

impl Lowerer<'_> {
    fn ty(&self, e: &Expr) -> ScalarTy {
        match e {
            Expr::Int(_) => ScalarTy::Int,
            Expr::Float(_) => ScalarTy::Float,
            Expr::Var(v) => self.k.scalars[v.0].1,
            Expr::Load(..) => ScalarTy::Float,
            Expr::Bin(_, a, _) => self.ty(a),
            Expr::Cmp(..) => ScalarTy::Int,
            Expr::Select(_, a, _) => self.ty(a),
            Expr::IntToFloat(_) | Expr::Sqrt(_) | Expr::Neg(_) => ScalarTy::Float,
            Expr::FloatToInt(_) => ScalarTy::Int,
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::AssignVar { var, value } => {
                let dst = self.var_regs[var.0];
                self.expr_to(Some(dst), value);
            }
            Stmt::Store { arr, index, value } => {
                let v = self.expr_to(None, value);
                assert_eq!(v.class(), RegClass::Float, "stores write float elements");
                let (addr, disp) = self.address(*arr, index);
                let region = self.arr_region[arr.0];
                self.b
                    .store(v, addr, disp)
                    .with_region(region)
                    .emit(&mut self.b);
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => self.lower_for(*var, lo, hi, *step, body),
            Stmt::If { cond, then_, else_ } => self.lower_if(cond, then_, else_),
        }
    }

    fn lower_for(&mut self, var: VarId, lo: &Expr, hi: &Expr, step: i64, body: &[Stmt]) {
        assert!(step > 0, "loop steps must be positive");
        let counter = self.var_regs[var.0];
        assert_eq!(
            counter.class(),
            RegClass::Int,
            "loop variable must be an integer"
        );
        self.expr_to(Some(counter), lo);
        let bound = self.expr_to(None, hi);
        assert_eq!(
            bound.class(),
            RegClass::Int,
            "loop bound must be an integer"
        );

        let preheader = self.b.current_block();
        let header = self.b.add_block();
        let body0 = self.b.add_block();
        let latch = self.b.add_block();
        let exit = self.b.add_block();

        self.b.jmp(header);
        self.b.switch_to(header);
        let t = self.b.binop(Op::CmpLt, counter, bound);
        self.b.br(t, BrCond::Zero, exit, body0);

        // Register the loop before lowering the body so nested loops can
        // name it as parent.
        let loop_index = self.b.func().loops.len();
        self.b.func_mut().loops.push(CountedLoop {
            header,
            body: vec![body0],
            latch,
            exit,
            preheader,
            counter,
            step,
            bound: Bound::Reg(bound),
            parent: self.loop_stack.last().copied(),
        });

        self.b.switch_to(body0);
        let before = self.b.func().blocks().len();
        self.loop_stack.push(loop_index);
        self.stmts(body);
        self.loop_stack.pop();
        let after = self.b.func().blocks().len();
        self.b.jmp(latch);

        // Record every block created while lowering the body.
        let mut members = vec![body0];
        members.extend((before..after).map(bsched_ir::BlockId::new));
        self.b.func_mut().loops[loop_index].body = members;

        self.b.switch_to(latch);
        self.b.push(Inst::op_imm(Op::Add, counter, counter, step));
        self.b.jmp(header);
        self.b.switch_to(exit);
    }

    fn lower_if(&mut self, cond: &Expr, then_: &[Stmt], else_: &[Stmt]) {
        let c = self.expr_to(None, cond);
        assert_eq!(c.class(), RegClass::Int, "condition must be an integer");
        let then_b = self.b.add_block();
        let else_b = self.b.add_block();
        let join = self.b.add_block();
        self.b.br(c, BrCond::NonZero, then_b, else_b);
        self.b.switch_to(then_b);
        self.stmts(then_);
        self.b.jmp(join);
        self.b.switch_to(else_b);
        self.stmts(else_);
        self.b.jmp(join);
        self.b.switch_to(join);
    }

    /// Computes `(address register, byte displacement)` for an array
    /// reference.
    fn address(&mut self, arr: ArrId, index: &Index) -> (Reg, i64) {
        let base = self.arr_base[arr.0];
        match index {
            Index::Affine { terms, offset } => {
                // Each term is scaled to bytes individually so the whole
                // address chain stays affine in any one loop counter (the
                // linear-form analysis in `bsched-opt` relies on this).
                let mut acc: Option<Reg> = None;
                for &(v, c) in terms {
                    if c == 0 {
                        continue;
                    }
                    let vr = self.var_regs[v.0];
                    assert_eq!(
                        vr.class(),
                        RegClass::Int,
                        "index variables must be integers"
                    );
                    let bytes = c * 8;
                    let term = if bytes > 0 && (bytes as u64).is_power_of_two() {
                        self.b
                            .binop_imm(Op::Shl, vr, i64::from(bytes.trailing_zeros()))
                    } else {
                        self.b.binop_imm(Op::Mul, vr, bytes)
                    };
                    acc = Some(match acc {
                        None => term,
                        Some(a) => self.b.binop(Op::Add, a, term),
                    });
                }
                match acc {
                    None => (base, offset * 8),
                    Some(a) => {
                        let addr = self.b.binop(Op::Add, base, a);
                        (addr, offset * 8)
                    }
                }
            }
            Index::Dyn(e) => {
                let idx = self.expr_to(None, e);
                assert_eq!(
                    idx.class(),
                    RegClass::Int,
                    "dynamic index must be an integer"
                );
                let bytes = self.b.binop_imm(Op::Shl, idx, 3);
                let addr = self.b.binop(Op::Add, base, bytes);
                (addr, 0)
            }
        }
    }

    /// Lowers an expression; when `dst` is given the root operation writes
    /// it (so scalar assignments keep a single def per statement).
    fn expr_to(&mut self, dst: Option<Reg>, e: &Expr) -> Reg {
        match e {
            Expr::Int(v) => match dst {
                Some(d) => {
                    self.b.push(Inst::li(d, *v));
                    d
                }
                None => self.b.iconst(*v),
            },
            Expr::Float(v) => match dst {
                Some(d) => {
                    self.b.push(Inst::fli(d, *v));
                    d
                }
                None => self.b.fconst(*v),
            },
            Expr::Var(v) => {
                let r = self.var_regs[v.0];
                match dst {
                    Some(d) if d != r => {
                        self.b.push(Inst::copy(d, r));
                        d
                    }
                    _ => r,
                }
            }
            Expr::Load(arr, index) => {
                let (addr, disp) = self.address(*arr, index);
                let region = self.arr_region[arr.0];
                let d = dst.unwrap_or_else(|| self.b.new_reg(RegClass::Float));
                self.b.push(Inst::load(d, addr, disp).with_region(region));
                d
            }
            Expr::Bin(op, a, bx) => {
                let ty = self.ty(a);
                assert_eq!(ty, self.ty(bx), "mixed-type arithmetic");
                let ra = self.expr_to(None, a);
                let rb = self.expr_to(None, bx);
                let opcode = match (op, ty) {
                    (BinOp::Add, ScalarTy::Int) => Op::Add,
                    (BinOp::Sub, ScalarTy::Int) => Op::Sub,
                    (BinOp::Mul, ScalarTy::Int) => Op::Mul,
                    (BinOp::And, ScalarTy::Int) => Op::And,
                    (BinOp::Shl, ScalarTy::Int) => Op::Shl,
                    (BinOp::Shr, ScalarTy::Int) => Op::Shr,
                    (BinOp::Add, ScalarTy::Float) => Op::FAdd,
                    (BinOp::Sub, ScalarTy::Float) => Op::FSub,
                    (BinOp::Mul, ScalarTy::Float) => Op::FMul,
                    (BinOp::Div, ScalarTy::Float) => Op::FDivD,
                    (BinOp::Div, ScalarTy::Int) => panic!("integer division is not in the ISA"),
                    (b, t) => panic!("operator {b:?} is not valid at type {t:?}"),
                };
                self.emit_op(dst, opcode, &[ra, rb])
            }
            Expr::Cmp(op, a, bx) => {
                let ty = self.ty(a);
                assert_eq!(ty, self.ty(bx), "mixed-type comparison");
                let ra = self.expr_to(None, a);
                let rb = self.expr_to(None, bx);
                let opcode = match (op, ty) {
                    (CmpOp::Eq, ScalarTy::Int) => Op::CmpEq,
                    (CmpOp::Lt, ScalarTy::Int) => Op::CmpLt,
                    (CmpOp::Le, ScalarTy::Int) => Op::CmpLe,
                    (CmpOp::Eq, ScalarTy::Float) => Op::FCmpEq,
                    (CmpOp::Lt, ScalarTy::Float) => Op::FCmpLt,
                    (CmpOp::Le, ScalarTy::Float) => Op::FCmpLe,
                };
                self.emit_op(dst, opcode, &[ra, rb])
            }
            Expr::Select(c, a, bx) => {
                let rc = self.expr_to(None, c);
                let ra = self.expr_to(None, a);
                let rb = self.expr_to(None, bx);
                assert_eq!(ra.class(), rb.class(), "select arms must agree");
                let d = dst.unwrap_or_else(|| self.b.new_reg(ra.class()));
                self.b.push(Inst::select(d, rc, ra, rb));
                d
            }
            Expr::IntToFloat(a) => {
                let ra = self.expr_to(None, a);
                self.emit_op(dst, Op::CvtIF, &[ra])
            }
            Expr::FloatToInt(a) => {
                let ra = self.expr_to(None, a);
                self.emit_op(dst, Op::CvtFI, &[ra])
            }
            Expr::Sqrt(a) => {
                let ra = self.expr_to(None, a);
                self.emit_op(dst, Op::FSqrt, &[ra])
            }
            Expr::Neg(a) => {
                let ra = self.expr_to(None, a);
                self.emit_op(dst, Op::FNeg, &[ra])
            }
        }
    }

    fn emit_op(&mut self, dst: Option<Reg>, op: Op, srcs: &[Reg]) -> Reg {
        let class = op.fixed_dst_class().unwrap_or(srcs[0].class());
        let d = dst.unwrap_or_else(|| self.b.new_reg(class));
        self.b.push(Inst::op(op, d, srcs));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Interp, Terminator};

    fn axpy_kernel(n: i64) -> Kernel {
        let mut k = Kernel::new("axpy");
        let x = k.array("x", n as u64, ArrayInit::Ramp(0.0, 1.0));
        let y = k.array("y", n as u64, ArrayInit::Ramp(1.0, 0.5));
        let i = k.int_var("i");
        let body = vec![k.store(
            y,
            Index::of(i),
            Expr::load(x, Index::of(i)) * Expr::Float(2.0) + Expr::load(y, Index::of(i)),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k
    }

    #[test]
    fn canonical_loop_shape() {
        let p = axpy_kernel(16).lower();
        assert!(bsched_ir::verify_program(&p).is_ok());
        let f = p.main();
        assert_eq!(f.loops.len(), 1);
        let l = &f.loops[0];
        // Header: single compare + conditional branch to exit.
        let h = f.block(l.header);
        assert_eq!(h.insts.len(), 1);
        assert_eq!(h.insts[0].op, Op::CmpLt);
        assert!(matches!(
            h.term,
            Terminator::Br {
                when: BrCond::Zero,
                ..
            }
        ));
        // Latch: single increment + jump to header.
        let latch = f.block(l.latch);
        assert_eq!(latch.insts.len(), 1);
        assert_eq!(latch.insts[0].op, Op::Add);
        assert_eq!(latch.insts[0].dst, Some(l.counter));
        assert_eq!(latch.term, Terminator::Jmp(l.header));
        // Single-block body jumping to the latch.
        assert_eq!(l.body.len(), 1);
        assert_eq!(f.block(l.body[0]).term, Terminator::Jmp(l.latch));
    }

    #[test]
    fn axpy_computes_correctly() {
        let p = axpy_kernel(16).lower();
        let out = Interp::new(&p).run().unwrap();
        // Rebuild the expected memory by hand.
        let mut img = bsched_ir::MemImage::new(&p);
        let ybase = p.region_bases()[1];
        for i in 0..16u64 {
            let x = i as f64;
            let y = 1.0 + 0.5 * i as f64;
            img.store(ybase + 8 * i, (2.0 * x + y).to_bits()).unwrap();
        }
        assert_eq!(out.checksum, img.checksum());
    }

    #[test]
    fn nested_loops_have_parent_links() {
        let mut k = Kernel::new("nest");
        let a = k.array("a", 64, ArrayInit::Zero);
        let i = k.int_var("i");
        let j = k.int_var("j");
        let inner = vec![k.store(
            a,
            Index::two(i, 8, j, 1, 0),
            Expr::IntToFloat(Box::new(Expr::Var(i))) + Expr::IntToFloat(Box::new(Expr::Var(j))),
        )];
        let outer = vec![k.for_loop(j, Expr::Int(0), Expr::Int(8), inner)];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(8), outer));
        let p = k.lower();
        let f = p.main();
        assert_eq!(f.loops.len(), 2);
        assert_eq!(f.loops[0].parent, None);
        assert_eq!(f.loops[1].parent, Some(0));
        assert_eq!(f.innermost_loops(), vec![1]);
        // The outer body must contain all inner-loop blocks.
        for b in f.loops[1].all_blocks() {
            assert!(f.loops[0].body.contains(&b), "outer body misses {b}");
        }
        let out = Interp::new(&p).run().unwrap();
        assert!(out.inst_count > 64 * 4);
    }

    #[test]
    fn if_lowering_and_semantics() {
        // s = 0; for i in 0..10 { if i < 5 { s = s + 1 } else { s = s + 100 } }; a[0] = float(s)
        let mut k = Kernel::new("iff");
        let a = k.array("a", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.int_var("s");
        k.push(k.assign(s, Expr::Int(0)));
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(5)),
            then_: vec![k.assign(s, Expr::Var(s) + Expr::Int(1))],
            else_: vec![k.assign(s, Expr::Var(s) + Expr::Int(100))],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(10), body));
        k.push(k.store(
            a,
            Index::constant(0),
            Expr::IntToFloat(Box::new(Expr::Var(s))),
        ));
        let p = k.lower();
        assert!(bsched_ir::verify_program(&p).is_ok());
        let out = Interp::new(&p).run().unwrap();
        let mut img = bsched_ir::MemImage::new(&p);
        img.store(p.region_bases()[0], (505.0f64).to_bits())
            .unwrap();
        assert_eq!(out.checksum, img.checksum());
    }

    #[test]
    fn dynamic_index_round_trip() {
        // idx[i] holds a permutation; out[i] = data[idx[i]].
        let mut k = Kernel::new("gather");
        let data = k.array("data", 8, ArrayInit::Ramp(10.0, 1.0));
        let idx = k.array(
            "idx",
            8,
            ArrayInit::Values(vec![7., 6., 5., 4., 3., 2., 1., 0.]),
        );
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let body = vec![k.store(
            out,
            Index::of(i),
            Expr::load(
                data,
                Index::Dyn(Box::new(Expr::FloatToInt(Box::new(Expr::load(
                    idx,
                    Index::of(i),
                ))))),
            ),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(8), body));
        let p = k.lower();
        let o = Interp::new(&p).run().unwrap();
        let mut img = bsched_ir::MemImage::new(&p);
        let ob = p.region_bases()[2];
        for i in 0..8u64 {
            img.store(ob + 8 * i, (10.0 + (7 - i) as f64).to_bits())
                .unwrap();
        }
        assert_eq!(o.checksum, img.checksum());
    }

    #[test]
    fn strided_loop() {
        // for i in (0..16).step_by(4) { a[i] = 1.0 }
        let mut k = Kernel::new("stride");
        let a = k.array("a", 16, ArrayInit::Zero);
        let i = k.int_var("i");
        let body = vec![k.store(a, Index::of(i), Expr::Float(1.0))];
        k.push(k.for_loop_step(i, Expr::Int(0), Expr::Int(16), 4, body));
        let p = k.lower();
        assert_eq!(p.main().loops[0].step, 4);
        let o = Interp::new(&p).run().unwrap();
        let mut img = bsched_ir::MemImage::new(&p);
        for i in (0..16u64).step_by(4) {
            img.store(p.region_bases()[0] + 8 * i, 1.0f64.to_bits())
                .unwrap();
        }
        assert_eq!(o.checksum, img.checksum());
    }

    #[test]
    fn random_init_is_deterministic() {
        let v1 = gen_init(16, &ArrayInit::Random(42));
        let v2 = gen_init(16, &ArrayInit::Random(42));
        let v3 = gen_init(16, &ArrayInit::Random(43));
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
        assert!(v1.iter().all(|x| *x > 0.0 && *x <= 1.0 + 1e-9));
    }
}
