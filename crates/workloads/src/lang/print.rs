//! Pretty-printing kernels back to the textual DSL of
//! [`crate::lang::parse`].
//!
//! `parse(print(k))` lowers to a program with the same observable
//! behaviour as `k` (verified by a round-trip property test), which makes
//! the textual form a faithful interchange format for kernels.

use super::ast::{BinOp, CmpOp, Expr, Index, ScalarTy, Stmt};
use super::{ArrayInit, Kernel};
use std::fmt::Write;

/// Renders a kernel in the textual DSL.
#[must_use]
pub fn print_kernel(k: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel {}", k.name());
    for a in &k.arrays {
        let init = match &a.init {
            ArrayInit::Zero => "zero".to_string(),
            ArrayInit::Ramp(s, st) => format!("ramp({}, {})", float(*s), float(*st)),
            ArrayInit::Random(seed) => format!("random({seed})"),
            ArrayInit::Values(vs) => {
                let items: Vec<String> = vs.iter().map(|v| float(*v)).collect();
                format!("values({})", items.join(", "))
            }
        };
        let _ = writeln!(out, "array {}[{}] = {}", a.name, a.elems, init);
    }
    for (name, ty) in &k.scalars {
        let ty = match ty {
            ScalarTy::Int => "int",
            ScalarTy::Float => "float",
        };
        let _ = writeln!(out, "var {name}: {ty}");
    }
    for s in &k.stmts {
        stmt(&mut out, k, s, 0);
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn stmt(out: &mut String, k: &Kernel, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::AssignVar { var, value } => {
            let _ = writeln!(out, "{} = {}", k.scalars[var.0].0, expr(k, value));
        }
        Stmt::Store { arr, index, value } => {
            let _ = writeln!(
                out,
                "{}[{}] = {}",
                k.arrays[arr.0].name,
                index_str(k, index),
                expr(k, value)
            );
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let step_str = if *step == 1 {
                String::new()
            } else {
                format!(" step {step}")
            };
            let _ = writeln!(
                out,
                "for {} in {}..{}{step_str} {{",
                k.scalars[var.0].0,
                expr(k, lo),
                expr(k, hi)
            );
            for b in body {
                stmt(out, k, b, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(out, "if {} {{", expr(k, cond));
            for b in then_ {
                stmt(out, k, b, depth + 1);
            }
            indent(out, depth);
            if else_.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for b in else_ {
                    stmt(out, k, b, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
    }
}

fn index_str(k: &Kernel, index: &Index) -> String {
    match index {
        Index::Affine { terms, offset } => {
            let mut parts = Vec::new();
            for (v, c) in terms {
                match c {
                    1 => parts.push(k.scalars[v.0].0.clone()),
                    -1 => parts.push(format!("0 - {}", k.scalars[v.0].0)),
                    c => parts.push(format!("{c} * {}", k.scalars[v.0].0)),
                }
            }
            if *offset != 0 || parts.is_empty() {
                parts.push(offset.to_string());
            }
            parts.join(" + ")
        }
        Index::Dyn(e) => expr(k, e),
    }
}

fn expr(k: &Kernel, e: &Expr) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                format!("(0 - {})", -v)
            } else {
                v.to_string()
            }
        }
        Expr::Float(v) => {
            if *v < 0.0 {
                format!("(0.0 - {})", float(-v))
            } else {
                float(*v)
            }
        }
        Expr::Var(v) => k.scalars[v.0].0.clone(),
        Expr::Load(a, index) => format!("{}[{}]", k.arrays[a.0].name, index_str(k, index)),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                // The DSL has no &,<<,>> surface syntax; they do not occur
                // in printable kernels (the builders never emit them).
                BinOp::And | BinOp::Shl | BinOp::Shr => {
                    unimplemented!("no DSL syntax for {op:?}")
                }
            };
            format!("({} {} {})", expr(k, a), sym, expr(k, b))
        }
        Expr::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
            };
            format!("({} {} {})", expr(k, a), sym, expr(k, b))
        }
        Expr::Select(c, a, b) => {
            format!("select({}, {}, {})", expr(k, c), expr(k, a), expr(k, b))
        }
        Expr::IntToFloat(a) => format!("float({})", expr(k, a)),
        Expr::FloatToInt(a) => format!("int({})", expr(k, a)),
        Expr::Sqrt(a) => format!("sqrt({})", expr(k, a)),
        Expr::Neg(a) => format!("(0.0 - {})", expr(k, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_kernel;
    use crate::suite::all_kernels_sources;
    use bsched_ir::Interp;

    #[test]
    fn suite_kernels_round_trip_through_text() {
        for (name, kernel) in all_kernels_sources() {
            let text = print_kernel(&kernel);
            let reparsed = parse_kernel(&text)
                .unwrap_or_else(|e| panic!("{name}: printed text fails to parse: {e}\n{text}"));
            let a = Interp::new(&kernel.lower()).run().unwrap().checksum;
            let b = Interp::new(&reparsed.lower()).run().unwrap().checksum;
            assert_eq!(a, b, "{name}: round-trip changed behaviour");
        }
    }

    #[test]
    fn printing_is_stable() {
        let (_, k) = &all_kernels_sources()[0];
        let t1 = print_kernel(k);
        let t2 = print_kernel(&parse_kernel(&t1).unwrap());
        assert_eq!(t1.trim(), t2.trim(), "print(parse(print(k))) is a fixpoint");
    }
}
