//! AST of the loop language.

use std::ops;

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarTy {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
}

/// Identifier of a scalar variable within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Identifier of an array within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrId(pub(crate) usize);

/// Binary arithmetic operators. Operand type (int/float) is inferred from
/// the operands; `Div` is float-only, shifts are int-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Floating-point division.
    Div,
    /// Integer bitwise and.
    And,
    /// Integer shift left.
    Shl,
    /// Integer arithmetic shift right.
    Shr,
}

/// Comparison operators (always produce an integer 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
}

/// An array index, in *elements* (8 bytes each).
#[derive(Debug, Clone, PartialEq)]
pub enum Index {
    /// Affine in loop/scalar integer variables:
    /// `offset + Σ coeff·var`. This is the shape locality analysis can
    /// classify ("indices ... linear functions of the loop indices",
    /// paper §3.3).
    Affine {
        /// `(variable, coefficient)` terms.
        terms: Vec<(VarId, i64)>,
        /// Constant element offset.
        offset: i64,
    },
    /// An arbitrary integer expression — e.g. an index loaded from another
    /// array. Defeats static reuse analysis, as in the paper's
    /// `spice2g6`-style irregular references.
    Dyn(Box<Expr>),
}

impl Index {
    /// `[var]`.
    #[must_use]
    pub fn of(var: VarId) -> Self {
        Index::Affine {
            terms: vec![(var, 1)],
            offset: 0,
        }
    }

    /// `[var + offset]`.
    #[must_use]
    pub fn of_plus(var: VarId, offset: i64) -> Self {
        Index::Affine {
            terms: vec![(var, 1)],
            offset,
        }
    }

    /// `[a*x + b*y + offset]` — a two-variable affine index (row-major
    /// 2-D access `A[x][y]` is `Index::two(x, ncols, y, 1, 0)`).
    #[must_use]
    pub fn two(x: VarId, a: i64, y: VarId, b: i64, offset: i64) -> Self {
        Index::Affine {
            terms: vec![(x, a), (y, b)],
            offset,
        }
    }

    /// A constant index.
    #[must_use]
    pub fn constant(offset: i64) -> Self {
        Index::Affine {
            terms: vec![],
            offset,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Scalar variable read.
    Var(VarId),
    /// Array element read.
    Load(ArrId, Index),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison (integer 0/1 result).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `cond != 0 ? a : b` — both arms always evaluated (cmov semantics).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Integer → float conversion.
    IntToFloat(Box<Expr>),
    /// Float → integer (truncating) conversion.
    FloatToInt(Box<Expr>),
    /// Square root (long-latency FP op).
    Sqrt(Box<Expr>),
    /// Negation (float).
    Neg(Box<Expr>),
}

impl Expr {
    /// An array element read.
    #[must_use]
    pub fn load(arr: ArrId, index: Index) -> Self {
        Expr::Load(arr, index)
    }

    /// A comparison.
    #[must_use]
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Self {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// A select.
    #[must_use]
    pub fn select(cond: Expr, a: Expr, b: Expr) -> Self {
        Expr::Select(Box::new(cond), Box::new(a), Box::new(b))
    }

    /// Float division.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // domain constructor, not an operator impl
    pub fn div(a: Expr, b: Expr) -> Self {
        Expr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }

    /// Square root.
    #[must_use]
    pub fn sqrt(a: Expr) -> Self {
        Expr::Sqrt(Box::new(a))
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = value`.
    AssignVar {
        /// Target scalar.
        var: VarId,
        /// Right-hand side.
        value: Expr,
    },
    /// `arr[index] = value`.
    Store {
        /// Target array.
        arr: ArrId,
        /// Element index.
        index: Index,
        /// Stored value (float).
        value: Expr,
    },
    /// `for var in (lo..hi).step_by(step)` with a positive constant step.
    For {
        /// Loop variable (integer scalar; also readable in the body).
        var: VarId,
        /// Inclusive lower bound (integer expression, loop-invariant).
        lo: Expr,
        /// Exclusive upper bound (integer expression, loop-invariant).
        hi: Expr,
        /// Constant positive step.
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Two-armed conditional.
    If {
        /// Condition (integer expression; non-zero = then-arm).
        cond: Expr,
        /// Then statements.
        then_: Vec<Stmt>,
        /// Else statements (may be empty).
        else_: Vec<Stmt>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_sugar_builds_trees() {
        let e = Expr::Int(1) + Expr::Int(2) * Expr::Int(3);
        match e {
            Expr::Bin(BinOp::Add, a, b) => {
                assert_eq!(*a, Expr::Int(1));
                assert!(matches!(*b, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn index_helpers() {
        let v = VarId(3);
        assert_eq!(
            Index::of(v),
            Index::Affine {
                terms: vec![(v, 1)],
                offset: 0
            }
        );
        assert_eq!(
            Index::of_plus(v, 4),
            Index::Affine {
                terms: vec![(v, 1)],
                offset: 4
            }
        );
        assert_eq!(
            Index::constant(7),
            Index::Affine {
                terms: vec![],
                offset: 7
            }
        );
    }
}
