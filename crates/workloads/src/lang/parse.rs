//! A textual frontend for the loop language.
//!
//! Grammar (line comments start with `#`):
//!
//! ```text
//! kernel    := "kernel" IDENT decl* stmt*
//! decl      := "array" IDENT "[" INT "]" "=" init
//!            | "var" IDENT ":" ("int" | "float")
//! init      := "zero" | "ramp" "(" NUM "," NUM ")"
//!            | "random" "(" INT ")" | "values" "(" NUM,* ")"
//! stmt      := IDENT "=" expr                      (scalar assign)
//!            | IDENT "[" index "]" "=" expr        (store)
//!            | "for" IDENT "in" expr ".." expr ("step" INT)? block
//!            | "if" expr block ("else" block)?
//! block     := "{" stmt* "}"
//! expr      := cmp (("<" | "<=" | "==") cmp)?
//! cmp       := term (("+" | "-") term)*
//! term      := factor (("*" | "/") factor)*
//! factor    := NUM | IDENT | IDENT "[" index "]" | "(" expr ")"
//!            | "sqrt" "(" expr ")" | "float" "(" expr ")"
//!            | "int" "(" expr ")" | "-" factor
//!            | "select" "(" expr "," expr "," expr ")"
//! index     := expr        (classified as affine when possible,
//!                           dynamic otherwise)
//! ```
//!
//! Integer literals are `Int`, literals with a decimal point are `Float`.
//!
//! ```
//! use bsched_workloads::lang::parse_kernel;
//!
//! let k = parse_kernel(r#"
//!     kernel demo
//!     array a[64] = ramp(0.0, 1.0)
//!     var i: int
//!     for i in 0..64 {
//!         a[i] = a[i] * 2.0
//!     }
//! "#).unwrap();
//! let program = k.lower();
//! assert!(bsched_ir::verify_program(&program).is_ok());
//! ```

use super::ast::{ArrId, BinOp, CmpOp, Expr, Index, ScalarTy, Stmt, VarId};
use super::{ArrayInit, Kernel};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Sym(&'static str),
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let text = raw.split('#').next().unwrap_or("");
        let bytes: Vec<char> = text.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push((line, Tok::Ident(bytes[start..i].iter().collect())));
                continue;
            }
            if c.is_ascii_digit()
                || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
            {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A '.' begins a fraction only when NOT part of "..".
                if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1] != '.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let s: String = bytes[start..i].iter().collect();
                let tok = if is_float {
                    Tok::Float(s.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad float literal `{s}`"),
                    })?)
                } else {
                    Tok::Int(s.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad integer literal `{s}`"),
                    })?)
                };
                out.push((line, tok));
                continue;
            }
            let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
            let sym2 = ["..", "<=", "=="].iter().find(|s| **s == two);
            if let Some(s) = sym2 {
                out.push((line, Tok::Sym(s)));
                i += 2;
                continue;
            }
            let sym1 = match c {
                '[' => "[",
                ']' => "]",
                '(' => "(",
                ')' => ")",
                '{' => "{",
                '}' => "}",
                ',' => ",",
                ':' => ":",
                '=' => "=",
                '<' => "<",
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                _ => {
                    return Err(ParseError {
                        line,
                        message: format!("unexpected character `{c}`"),
                    })
                }
            };
            out.push((line, Tok::Sym(sym1)));
            i += 1;
        }
    }
    Ok(out)
}

struct Parser {
    lexer: Lexer,
    kernel: Kernel,
    arrays: HashMap<String, ArrId>,
    vars: HashMap<String, VarId>,
}

impl Parser {
    fn line(&self) -> usize {
        self.lexer
            .toks
            .get(self.lexer.pos.min(self.lexer.toks.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.lexer.toks.get(self.lexer.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.lexer.toks.get(self.lexer.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.lexer.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(got)) if got == s => Ok(()),
            other => self.err(format!("expected `{s}`, found {other:?}")),
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => self.err(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn peek_is_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(got)) if *got == s)
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn parse_kernel(mut self) -> Result<Kernel, ParseError> {
        self.eat_keyword("kernel")?;
        let name = self.eat_ident()?;
        self.kernel.name = name;
        // Declarations.
        loop {
            if self.peek_is_kw("array") {
                self.next();
                let name = self.eat_ident()?;
                self.eat_sym("[")?;
                let elems = match self.next() {
                    Some(Tok::Int(n)) if n > 0 => n as u64,
                    other => return self.err(format!("expected array size, found {other:?}")),
                };
                self.eat_sym("]")?;
                self.eat_sym("=")?;
                let init = self.parse_init()?;
                let id = self.kernel.array(name.clone(), elems, init);
                self.arrays.insert(name, id);
            } else if self.peek_is_kw("var") {
                self.next();
                let name = self.eat_ident()?;
                self.eat_sym(":")?;
                let ty = self.eat_ident()?;
                let id = match ty.as_str() {
                    "int" => self.kernel.int_var(name.clone()),
                    "float" => self.kernel.float_var(name.clone()),
                    other => return self.err(format!("unknown type `{other}`")),
                };
                self.vars.insert(name, id);
            } else {
                break;
            }
        }
        // Statements.
        while self.peek().is_some() {
            let stmt = self.parse_stmt()?;
            self.kernel.push(stmt);
        }
        Ok(self.kernel)
    }

    fn parse_init(&mut self) -> Result<ArrayInit, ParseError> {
        let kind = self.eat_ident()?;
        match kind.as_str() {
            "zero" => Ok(ArrayInit::Zero),
            "ramp" => {
                self.eat_sym("(")?;
                let start = self.parse_number()?;
                self.eat_sym(",")?;
                let step = self.parse_number()?;
                self.eat_sym(")")?;
                Ok(ArrayInit::Ramp(start, step))
            }
            "random" => {
                self.eat_sym("(")?;
                let seed = match self.next() {
                    Some(Tok::Int(n)) => n as u64,
                    other => return self.err(format!("expected seed, found {other:?}")),
                };
                self.eat_sym(")")?;
                Ok(ArrayInit::Random(seed))
            }
            "values" => {
                self.eat_sym("(")?;
                let mut vs = Vec::new();
                if !self.peek_is_sym(")") {
                    loop {
                        vs.push(self.parse_number()?);
                        if self.peek_is_sym(",") {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.eat_sym(")")?;
                Ok(ArrayInit::Values(vs))
            }
            other => self.err(format!("unknown initializer `{other}`")),
        }
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        let neg = if self.peek_is_sym("-") {
            self.next();
            true
        } else {
            false
        };
        let v = match self.next() {
            Some(Tok::Int(n)) => n as f64,
            Some(Tok::Float(x)) => x,
            other => return self.err(format!("expected number, found {other:?}")),
        };
        Ok(if neg { -v } else { v })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_sym("{")?;
        let mut out = Vec::new();
        while !self.peek_is_sym("}") {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            out.push(self.parse_stmt()?);
        }
        self.eat_sym("}")?;
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.peek_is_kw("for") {
            self.next();
            let var_name = self.eat_ident()?;
            let var = *self.vars.get(&var_name).ok_or_else(|| ParseError {
                line: self.line(),
                message: format!("undeclared loop variable `{var_name}`"),
            })?;
            self.eat_keyword("in")?;
            let lo = self.parse_expr()?;
            self.eat_sym("..")?;
            let hi = self.parse_expr()?;
            let step = if self.peek_is_kw("step") {
                self.next();
                match self.next() {
                    Some(Tok::Int(n)) if n > 0 => n,
                    other => return self.err(format!("expected positive step, found {other:?}")),
                }
            } else {
                1
            };
            let body = self.parse_block()?;
            return Ok(Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            });
        }
        if self.peek_is_kw("if") {
            self.next();
            let cond = self.parse_expr()?;
            let then_ = self.parse_block()?;
            let else_ = if self.peek_is_kw("else") {
                self.next();
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then_, else_ });
        }
        // Assignment or store.
        let name = self.eat_ident()?;
        if self.peek_is_sym("[") {
            let arr = *self.arrays.get(&name).ok_or_else(|| ParseError {
                line: self.line(),
                message: format!("undeclared array `{name}`"),
            })?;
            self.next(); // [
            let index = self.parse_index()?;
            self.eat_sym("]")?;
            self.eat_sym("=")?;
            let value = self.parse_expr()?;
            return Ok(Stmt::Store { arr, index, value });
        }
        let var = *self.vars.get(&name).ok_or_else(|| ParseError {
            line: self.line(),
            message: format!("undeclared variable `{name}`"),
        })?;
        self.eat_sym("=")?;
        let value = self.parse_expr()?;
        Ok(Stmt::AssignVar { var, value })
    }

    fn parse_index(&mut self) -> Result<Index, ParseError> {
        let e = self.parse_expr()?;
        Ok(match to_affine(&e, &self.kernel) {
            Some(index) => index,
            None => Index::Dyn(Box::new(e)),
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_addsub()?;
        let op = if self.peek_is_sym("<") {
            Some(CmpOp::Lt)
        } else if self.peek_is_sym("<=") {
            Some(CmpOp::Le)
        } else if self.peek_is_sym("==") {
            Some(CmpOp::Eq)
        } else {
            None
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.parse_addsub()?;
            return Ok(Expr::cmp(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_addsub(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            if self.peek_is_sym("+") {
                self.next();
                lhs = lhs + self.parse_muldiv()?;
            } else if self.peek_is_sym("-") {
                self.next();
                lhs = lhs - self.parse_muldiv()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_muldiv(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_factor()?;
        loop {
            if self.peek_is_sym("*") {
                self.next();
                lhs = lhs * self.parse_factor()?;
            } else if self.peek_is_sym("/") {
                self.next();
                lhs = Expr::div(lhs, self.parse_factor()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        if self.peek_is_sym("-") {
            self.next();
            let inner = self.parse_factor()?;
            return Ok(match inner {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Float(v) => Expr::Float(-v),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.peek_is_sym("(") {
            self.next();
            let e = self.parse_expr()?;
            self.eat_sym(")")?;
            return Ok(e);
        }
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v)),
            Some(Tok::Ident(name)) => match name.as_str() {
                "sqrt" | "float" | "int" => {
                    self.eat_sym("(")?;
                    let e = self.parse_expr()?;
                    self.eat_sym(")")?;
                    Ok(match name.as_str() {
                        "sqrt" => Expr::sqrt(e),
                        "float" => Expr::IntToFloat(Box::new(e)),
                        _ => Expr::FloatToInt(Box::new(e)),
                    })
                }
                "select" => {
                    self.eat_sym("(")?;
                    let c = self.parse_expr()?;
                    self.eat_sym(",")?;
                    let a = self.parse_expr()?;
                    self.eat_sym(",")?;
                    let b = self.parse_expr()?;
                    self.eat_sym(")")?;
                    Ok(Expr::select(c, a, b))
                }
                _ => {
                    if self.peek_is_sym("[") {
                        let arr = *self.arrays.get(&name).ok_or_else(|| ParseError {
                            line: self.line(),
                            message: format!("undeclared array `{name}`"),
                        })?;
                        self.next(); // [
                        let index = self.parse_index()?;
                        self.eat_sym("]")?;
                        Ok(Expr::Load(arr, index))
                    } else {
                        let var = *self.vars.get(&name).ok_or_else(|| ParseError {
                            line: self.line(),
                            message: format!("undeclared variable `{name}`"),
                        })?;
                        Ok(Expr::Var(var))
                    }
                }
            },
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Tries to view an integer expression as an affine index
/// `Σ coeff·int_var + offset`.
fn to_affine(e: &Expr, k: &Kernel) -> Option<Index> {
    fn walk(e: &Expr, k: &Kernel, sign: i64, terms: &mut Vec<(VarId, i64)>, off: &mut i64) -> bool {
        match e {
            Expr::Int(v) => {
                *off += sign * v;
                true
            }
            Expr::Var(v) if k.scalars[v.0].1 == ScalarTy::Int => {
                terms.push((*v, sign));
                true
            }
            Expr::Bin(BinOp::Add, a, b) => {
                walk(a, k, sign, terms, off) && walk(b, k, sign, terms, off)
            }
            Expr::Bin(BinOp::Sub, a, b) => {
                walk(a, k, sign, terms, off) && walk(b, k, -sign, terms, off)
            }
            Expr::Bin(BinOp::Mul, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Int(c), Expr::Var(v)) | (Expr::Var(v), Expr::Int(c))
                    if k.scalars[v.0].1 == ScalarTy::Int =>
                {
                    terms.push((*v, sign * c));
                    true
                }
                (Expr::Int(a_), Expr::Int(b_)) => {
                    *off += sign * a_ * b_;
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }
    let mut terms = Vec::new();
    let mut off = 0;
    if !walk(e, k, 1, &mut terms, &mut off) {
        return None;
    }
    // Merge duplicate variables.
    let mut merged: Vec<(VarId, i64)> = Vec::new();
    for (v, c) in terms {
        match merged.iter_mut().find(|(mv, _)| *mv == v) {
            Some((_, mc)) => *mc += c,
            None => merged.push((v, c)),
        }
    }
    merged.retain(|&(_, c)| c != 0);
    Some(Index::Affine {
        terms: merged,
        offset: off,
    })
}

/// Parses a kernel from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let toks = lex(src)?;
    Parser {
        lexer: Lexer { toks, pos: 0 },
        kernel: Kernel::new("unnamed"),
        arrays: HashMap::new(),
        vars: HashMap::new(),
    }
    .parse_kernel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::Interp;

    #[test]
    fn parses_and_matches_builder_kernel() {
        let text = r#"
            kernel axpy
            array x[64] = ramp(0.0, 1.0)
            array y[64] = ramp(1.0, 0.5)
            var i: int
            for i in 0..64 {
                y[i] = x[i] * 2.0 + y[i]
            }
        "#;
        let parsed = parse_kernel(text).unwrap().lower();

        let mut k = Kernel::new("axpy");
        let x = k.array("x", 64, ArrayInit::Ramp(0.0, 1.0));
        let y = k.array("y", 64, ArrayInit::Ramp(1.0, 0.5));
        let i = k.int_var("i");
        let body = vec![k.store(
            y,
            Index::of(i),
            Expr::load(x, Index::of(i)) * Expr::Float(2.0) + Expr::load(y, Index::of(i)),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(64), body));
        let built = k.lower();

        let a = Interp::new(&parsed).run().unwrap().checksum;
        let b = Interp::new(&built).run().unwrap().checksum;
        assert_eq!(a, b, "parsed and built kernels agree");
    }

    #[test]
    fn two_dimensional_indices_are_affine() {
        let text = r#"
            kernel mat
            array a[64] = random(3)
            var i: int
            var j: int
            for i in 0..8 {
                for j in 0..8 {
                    a[8 * i + j] = a[8 * i + j] + 1.0
                }
            }
        "#;
        let k = parse_kernel(text).unwrap();
        let p = k.lower();
        assert!(bsched_ir::verify_program(&p).is_ok());
        // The index must have lowered as affine: locality analysis sees a
        // spatial reference.
        let refs = bsched_opt_compatible_check(&p);
        assert!(refs, "2-D affine index must be classifiable");
    }

    // Avoid a dev-dependency cycle: just verify the address chain shape
    // (shifts/adds off the loop counters, constant displacement).
    fn bsched_opt_compatible_check(p: &bsched_ir::Program) -> bool {
        p.main()
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .any(|i| i.op.is_load() && i.mem.is_some())
    }

    #[test]
    fn ifs_selects_and_dynamic_indices() {
        let text = r#"
            kernel gather
            array data[32] = ramp(10.0, 1.0)
            array idx[32] = ramp(0.0, 1.0)
            array out[32] = zero
            var i: int
            var s: float
            s = 0.0
            for i in 0..32 {
                out[i] = data[int(idx[i])]       # dynamic index
                if data[i] < 20.0 {
                    s = s + select(data[i] < 15.0, 1.0, 0.5)
                } else {
                    s = s - 0.25
                }
            }
            out[0] = s
        "#;
        let k = parse_kernel(text).unwrap();
        let p = k.lower();
        assert!(bsched_ir::verify_program(&p).is_ok());
        assert!(Interp::new(&p).run().is_ok());
    }

    #[test]
    fn step_and_bounds_expressions() {
        let text = r#"
            kernel strided
            array a[64] = zero
            var i: int
            var n: int
            n = 32 + 32
            for i in 0..n step 4 {
                a[i] = 1.0
            }
        "#;
        let p = parse_kernel(text).unwrap().lower();
        assert_eq!(p.main().loops[0].step, 4);
        let out = Interp::new(&p).run().unwrap();
        assert!(out.inst_count > 16 * 3);
    }

    #[test]
    fn error_reporting_has_lines() {
        let bad = "kernel x\nvar i: int\nfor j in 0..4 { }";
        let err = parse_kernel(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("undeclared"));

        let bad2 = "kernel x\narray a[0] = zero";
        assert!(parse_kernel(bad2).is_err());

        let bad3 = "kernel x\nvar i: quaternion";
        assert!(parse_kernel(bad3)
            .unwrap_err()
            .message
            .contains("unknown type"));
    }

    #[test]
    fn negative_offsets_and_subtraction_fold_into_affine() {
        let text = r#"
            kernel stencil
            array u[80] = random(5)
            var i: int
            for i in 1..79 {
                u[i] = u[i - 1] + u[i + 1]
            }
        "#;
        let k = parse_kernel(text).unwrap();
        // Find the store's index: offset -1 and +1 loads.
        let mut saw_minus = false;
        fn scan(stmts: &[Stmt], saw: &mut bool) {
            for s in stmts {
                match s {
                    Stmt::Store { value, .. } => scan_expr(value, saw),
                    Stmt::For { body, .. } => scan(body, saw),
                    _ => {}
                }
            }
        }
        fn scan_expr(e: &Expr, saw: &mut bool) {
            match e {
                Expr::Load(_, Index::Affine { offset, .. }) if *offset == -1 => *saw = true,
                Expr::Bin(_, a, b) => {
                    scan_expr(a, saw);
                    scan_expr(b, saw);
                }
                _ => {}
            }
        }
        scan(&k.stmts, &mut saw_minus);
        assert!(
            saw_minus,
            "u[i - 1] must become an affine index with offset -1"
        );
    }

    #[test]
    fn comments_and_float_forms() {
        let text = r#"
            kernel c   # trailing comment
            array a[8] = zero
            var x: float
            # whole-line comment
            x = 1.5e2 + .25
            a[0] = x
        "#;
        let p = parse_kernel(text).unwrap().lower();
        let out = Interp::new(&p).run().unwrap();
        let mut img = bsched_ir::MemImage::new(&p);
        img.store(p.region_bases()[0], (150.25f64).to_bits())
            .unwrap();
        assert_eq!(out.checksum, img.checksum());
    }
    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let text = r#"
            kernel prec
            array a[8] = zero
            var x: float
            x = 1.0 + 2.0 * 3.0
            a[0] = x
        "#;
        let p = parse_kernel(text).unwrap().lower();
        let out = Interp::new(&p).run().unwrap();
        let mut img = bsched_ir::MemImage::new(&p);
        img.store(p.region_bases()[0], (7.0f64).to_bits()).unwrap();
        assert_eq!(out.checksum, img.checksum(), "1 + 2*3 must be 7");
    }

    #[test]
    fn values_initializer_round_trips() {
        let text = r#"
            kernel v
            array a[4] = values(1.5, 2.5, 3.5)
            var x: float
            x = a[0] + a[1] + a[2] + a[3]
            a[0] = x
        "#;
        let p = parse_kernel(text).unwrap().lower();
        let out = Interp::new(&p).run().unwrap();
        let mut img = bsched_ir::MemImage::new(&p);
        img.store(p.region_bases()[0], (7.5f64).to_bits()).unwrap();
        img.store(p.region_bases()[0] + 8, (2.5f64).to_bits()).unwrap();
        img.store(p.region_bases()[0] + 16, (3.5f64).to_bits()).unwrap();
        assert_eq!(out.checksum, img.checksum());
    }

    #[test]
    fn division_parses_left_associative() {
        let text = r#"
            kernel d
            array a[8] = zero
            var x: float
            x = 8.0 / 2.0 / 2.0
            a[0] = x
        "#;
        let p = parse_kernel(text).unwrap().lower();
        let out = Interp::new(&p).run().unwrap();
        let mut img = bsched_ir::MemImage::new(&p);
        img.store(p.region_bases()[0], (2.0f64).to_bits()).unwrap();
        assert_eq!(out.checksum, img.checksum(), "8/2/2 must be 2");
    }

}
