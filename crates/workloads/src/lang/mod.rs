//! The structured loop language: AST, kernel builder, and lowering to the
//! canonical counted-loop IR shape.

pub mod ast;
pub mod lower;
pub mod parse;
pub mod print;

pub use ast::{ArrId, BinOp, CmpOp, Expr, Index, ScalarTy, Stmt, VarId};
pub use lower::lower_kernel;
pub use parse::{parse_kernel, ParseError};
pub use print::print_kernel;

use bsched_ir::Program;

/// How an array's initial contents are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayInit {
    /// All zeros.
    Zero,
    /// `start, start+step, start+2*step, ...`
    Ramp(f64, f64),
    /// Deterministic pseudo-random values in (0, 1], seeded per array.
    Random(u64),
    /// Explicit values (shorter than the array: tail is zero).
    Values(Vec<f64>),
}

#[derive(Debug, Clone)]
pub(crate) struct ArrayDecl {
    pub name: String,
    pub elems: u64,
    pub init: ArrayInit,
}

/// A kernel under construction: arrays, scalar variables, and a statement
/// list. [`Kernel::lower`] produces an executable [`Program`].
#[derive(Debug, Clone)]
pub struct Kernel {
    pub(crate) name: String,
    pub(crate) arrays: Vec<ArrayDecl>,
    pub(crate) scalars: Vec<(String, ScalarTy)>,
    pub(crate) stmts: Vec<Stmt>,
}

impl Kernel {
    /// Starts an empty kernel.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            arrays: Vec::new(),
            scalars: Vec::new(),
            stmts: Vec::new(),
        }
    }

    /// Declares an array of `elems` 64-bit float elements.
    pub fn array(&mut self, name: impl Into<String>, elems: u64, init: ArrayInit) -> ArrId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elems,
            init,
        });
        ArrId(self.arrays.len() - 1)
    }

    /// Declares an integer scalar variable.
    pub fn int_var(&mut self, name: impl Into<String>) -> VarId {
        self.scalars.push((name.into(), ScalarTy::Int));
        VarId(self.scalars.len() - 1)
    }

    /// Declares a floating-point scalar variable.
    pub fn float_var(&mut self, name: impl Into<String>) -> VarId {
        self.scalars.push((name.into(), ScalarTy::Float));
        VarId(self.scalars.len() - 1)
    }

    /// Appends a top-level statement.
    pub fn push(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    /// Convenience: a `for var in lo..hi` loop statement (step 1).
    #[must_use]
    pub fn for_loop(&self, var: VarId, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var,
            lo,
            hi,
            step: 1,
            body,
        }
    }

    /// Convenience: a strided `for` loop statement.
    #[must_use]
    pub fn for_loop_step(
        &self,
        var: VarId,
        lo: Expr,
        hi: Expr,
        step: i64,
        body: Vec<Stmt>,
    ) -> Stmt {
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        }
    }

    /// Convenience: a store statement.
    #[must_use]
    pub fn store(&self, arr: ArrId, index: Index, value: Expr) -> Stmt {
        Stmt::Store { arr, index, value }
    }

    /// Convenience: a scalar assignment statement.
    #[must_use]
    pub fn assign(&self, var: VarId, value: Expr) -> Stmt {
        Stmt::AssignVar { var, value }
    }

    /// The kernel's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lowers the kernel to an executable program in canonical
    /// counted-loop shape.
    ///
    /// # Panics
    ///
    /// Panics on type errors in the AST (mixed int/float operands, float
    /// loop bounds, out-of-range ids).
    #[must_use]
    pub fn lower(&self) -> Program {
        lower_kernel(self)
    }
}
