//! The 17-kernel workload: one synthetic kernel per benchmark of the
//! paper's Table 1, with the loop/branch/array structure the paper's
//! analysis attributes to each program (see DESIGN.md §2 for the
//! substitution argument and EXPERIMENTS.md for the shape comparison).
//!
//! Problem sizes are scaled so the whole suite simulates in seconds;
//! array footprints are chosen relative to the 8 KB L1 / 96 KB L2 / 2 MB
//! board cache so each kernel reproduces its paper counterpart's memory
//! character (e.g. `ora` lives in registers, `tomcatv` streams far beyond
//! the L2).

mod perfect;
mod spec92;

use crate::lang::ast::{Index, VarId};
use crate::lang::Kernel;
use bsched_ir::Program;

/// A named kernel constructor, as listed by each suite module.
pub(crate) type KernelSource = (&'static str, fn() -> Kernel);

/// Which suite a benchmark came from in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Perfect Club.
    PerfectClub,
    /// SPEC92.
    Spec92,
}

/// A named kernel of the workload.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Benchmark name as in the paper's Table 1.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Source language in the paper (`Fortran`/`C`).
    pub lang: &'static str,
    /// The paper's one-line description.
    pub description: &'static str,
    /// The structural property our synthetic kernel reproduces.
    pub shape: &'static str,
    build: fn() -> Program,
}

impl KernelSpec {
    /// Builds the kernel's program (deterministic).
    #[must_use]
    pub fn program(&self) -> Program {
        (self.build)()
    }
}

/// All 17 kernels, in the paper's Table 1 order.
#[must_use]
pub fn all_kernels() -> Vec<KernelSpec> {
    let mut v = perfect::kernels();
    v.extend(spec92::kernels());
    v
}

/// Every kernel as an un-lowered [`crate::lang::Kernel`] (textual
/// round-trip tests, pretty-printing).
#[must_use]
pub fn all_kernels_sources() -> Vec<(&'static str, crate::lang::Kernel)> {
    let mut v: Vec<(&'static str, crate::lang::Kernel)> = Vec::new();
    for (name, build) in perfect::kernel_sources() {
        v.push((name, build()));
    }
    for (name, build) in spec92::kernel_sources() {
        v.push((name, build()));
    }
    v
}

/// Looks a kernel up by its paper name.
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<KernelSpec> {
    all_kernels().into_iter().find(|k| k.name == name)
}

/// Row-major 2-D element index `A[i][j]` for an array with `ncols`
/// columns. Keep `ncols` a multiple of 4 so rows stay cache-line aligned
/// (the alignment precondition of locality analysis, §3.3).
#[must_use]
pub(crate) fn idx2(i: VarId, ncols: i64, j: VarId) -> Index {
    Index::two(i, ncols, j, 1, 0)
}

/// `A[i][j + off]`.
#[must_use]
pub(crate) fn idx2_off(i: VarId, ncols: i64, j: VarId, off: i64) -> Index {
    Index::two(i, ncols, j, 1, off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::Interp;

    #[test]
    fn seventeen_kernels_in_paper_order() {
        let ks = all_kernels();
        assert_eq!(ks.len(), 17);
        let names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        assert_eq!(
            names,
            vec![
                "ARC2D", "BDNA", "DYFESM", "MDG", "QCD2", "TRFD", "alvinn", "dnasa7", "doduc",
                "ear", "hydro2d", "mdljdp2", "ora", "spice2g6", "su2cor", "swm256", "tomcatv"
            ]
        );
        assert!(kernel_by_name("tomcatv").is_some());
        assert!(kernel_by_name("nope").is_none());
    }

    #[test]
    fn every_kernel_lowers_verifies_and_executes() {
        for k in all_kernels() {
            let p = k.program();
            assert!(
                bsched_ir::verify_program(&p).is_ok(),
                "{} fails verification",
                k.name
            );
            let out = Interp::new(&p)
                .with_fuel(50_000_000)
                .run()
                .unwrap_or_else(|e| panic!("{} failed to execute: {e}", k.name));
            assert!(
                (10_000..5_000_000).contains(&out.inst_count),
                "{}: {} dynamic instructions is out of the scaled range",
                k.name,
                out.inst_count
            );
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for k in all_kernels() {
            let a = Interp::new(&k.program()).run().unwrap().checksum;
            let b = Interp::new(&k.program()).run().unwrap().checksum;
            assert_eq!(a, b, "{} is non-deterministic", k.name);
        }
    }

    #[test]
    fn kernels_do_meaningful_work() {
        // The final observable memory must differ from the initial image
        // (otherwise DCE-style accidents could hollow a kernel out).
        for k in all_kernels() {
            let p = k.program();
            let initial = bsched_ir::MemImage::new(&p).checksum();
            let final_ = Interp::new(&p).run().unwrap().checksum;
            assert_ne!(initial, final_, "{} leaves memory untouched", k.name);
        }
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;

    /// Memory-footprint guards: each kernel's cache character is part of
    /// its paper shape (DESIGN.md §2) and must not drift.
    #[test]
    fn kernel_footprints_match_their_cache_character() {
        let l1 = 8 * 1024_u64;
        let l2 = 96 * 1024_u64;
        let footprint = |name: &str| -> u64 {
            let p = kernel_by_name(name).expect("kernel exists").program();
            p.regions().iter().map(|r| r.size()).sum()
        };
        // ora: registers + a tiny parameter table; fits the L1 easily.
        assert!(footprint("ora") < l1, "ora must be L1-resident");
        // spice2g6: the chase table alone overflows the L2.
        assert!(footprint("spice2g6") > l2, "spice2g6 must overflow the L2");
        // tomcatv: read-only arrays beyond the L2.
        assert!(footprint("tomcatv") > l2, "tomcatv must stream past the L2");
        // ARC2D: beyond L1, within a few L2s.
        let arc = footprint("ARC2D");
        assert!(arc > l1 && arc < 4 * l2);
    }

    /// doduc, mdljdp2 and DYFESM keep conditionals whose arms store —
    /// the structural property that blocks predication and therefore
    /// unrolling (paper §5.1). Check the actual diamond shape the
    /// predication pass looks for: both arms single-predecessor blocks
    /// jumping to a common join.
    #[test]
    fn multiconditional_kernels_have_storing_arms() {
        use bsched_ir::{Cfg, Terminator};
        for name in ["doduc", "mdljdp2", "DYFESM"] {
            let p = kernel_by_name(name).expect("kernel exists").program();
            let f = p.main();
            let cfg = Cfg::new(f);
            let mut diamonds = 0;
            for (_, b) in f.iter_blocks() {
                let Terminator::Br { taken, fall, .. } = b.term else {
                    continue;
                };
                let join_of = |arm: bsched_ir::BlockId| match f.block(arm).term {
                    Terminator::Jmp(j) => Some(j),
                    _ => None,
                };
                let (Some(tj), Some(fj)) = (join_of(taken), join_of(fall)) else {
                    continue;
                };
                if tj != fj || cfg.preds(taken).len() != 1 || cfg.preds(fall).len() != 1 {
                    continue;
                }
                diamonds += 1;
                // At least one arm of every real diamond must store, or
                // predication would linearise it.
                let stores = [taken, fall]
                    .iter()
                    .any(|&a| f.block(a).insts.iter().any(|i| i.op.is_store()));
                assert!(stores, "{name}: predicable diamond found at {taken}/{fall}");
            }
            assert!(diamonds >= 1, "{name}: expected conditional diamonds");
        }
    }

    /// BDNA's body must exceed the factor-4 unroll budget (the paper:
    /// "the iteration instruction limit ... disabled the optimization").
    #[test]
    fn bdna_body_exceeds_unroll_budget() {
        let p = kernel_by_name("BDNA").expect("kernel exists").program();
        let f = p.main();
        let body_insts: usize = f.loops[0].body.iter().map(|b| f.block(*b).len()).sum();
        assert!(body_insts > 40, "BDNA body is only {body_insts} instructions");
    }
}
