//! Perfect Club kernels: ARC2D, BDNA, DYFESM, MDG, QCD2, TRFD.

use super::{idx2, idx2_off, KernelSpec, Suite};
use crate::lang::ast::{CmpOp, Expr, Index, Stmt};
use crate::lang::{ArrayInit, Kernel};
use bsched_ir::Program;

fn ld(arr: crate::lang::ast::ArrId, idx: Index) -> Expr {
    Expr::load(arr, idx)
}

/// ARC2D: two-dimensional fluid-flow stencil sweeps. Unrollable inner
/// loops full of independent array loads — the paper's biggest
/// balanced-scheduling winner among the Perfect codes.
fn arc2d_kernel() -> Kernel {
    const NI: i64 = 40;
    const NJ: i64 = 64;
    let mut k = Kernel::new("ARC2D");
    let p = k.array("P", (NI * NJ) as u64, ArrayInit::Random(0xa2c2d));
    let q = k.array("Q", (NI * NJ) as u64, ArrayInit::Random(0xa2c2e));
    let r = k.array("R", (NI * NJ) as u64, ArrayInit::Zero);
    let s = k.array("S", (NI * NJ) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");

    // Sweep 1: two independent flux components per point (the real ARC2D
    // inner loops update several quantities per iteration — wide bodies).
    let sweep1 = vec![
        k.store(
            r,
            idx2(i, NJ, j),
            ld(p, idx2(i, NJ, j)) * Expr::Float(2.5)
                + ld(p, Index::two(i, NJ, j, 1, -NJ))
                + ld(p, Index::two(i, NJ, j, 1, NJ)),
        ),
        k.store(
            s,
            idx2(i, NJ, j),
            ld(q, idx2(i, NJ, j)) * Expr::Float(1.5)
                - ld(q, idx2_off(i, NJ, j, 1)) * Expr::Float(0.5),
        ),
    ];
    k.push(k.for_loop(
        i,
        Expr::Int(1),
        Expr::Int(NI - 1),
        vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ - 1), sweep1)],
    ));

    // Sweep 2: two independent relaxations.
    let sweep2 = vec![
        k.store(
            q,
            idx2(i, NJ, j),
            ld(q, idx2(i, NJ, j))
                + (ld(r, idx2(i, NJ, j)) - ld(r, Index::two(i, NJ, j, 1, -NJ))) * Expr::Float(0.2),
        ),
        k.store(
            p,
            idx2(i, NJ, j),
            ld(p, idx2(i, NJ, j)) + ld(s, idx2(i, NJ, j)) * Expr::Float(0.1),
        ),
    ];
    k.push(k.for_loop(
        i,
        Expr::Int(1),
        Expr::Int(NI - 1),
        vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ), sweep2)],
    ));
    k
}

/// BDNA: nucleic-acid simulation whose hot loops already have *very
/// large basic blocks*, so the unrolling size limit disables the
/// optimization (paper §5.1 footnote) while balanced scheduling still
/// finds plenty of load-level parallelism.
fn bdna_kernel() -> Kernel {
    const N: i64 = 1500;
    let mut k = Kernel::new("BDNA");
    let x = k.array("x", N as u64 + 4, ArrayInit::Random(0xbd0a));
    let y = k.array("y", N as u64 + 4, ArrayInit::Random(0xbd0b));
    let z = k.array("z", N as u64 + 4, ArrayInit::Random(0xbd0c));
    let f1 = k.array("f1", N as u64, ArrayInit::Zero);
    let f2 = k.array("f2", N as u64, ArrayInit::Zero);
    let i = k.int_var("i");

    // A wide straight-line body: many independent load/multiply trees.
    let mut body = Vec::new();
    let temps: Vec<_> = (0..10).map(|q| k.float_var(format!("t{q}"))).collect();
    for (q, &t) in temps.iter().enumerate() {
        let off = (q % 4) as i64;
        body.push(k.assign(
            t,
            ld(x, Index::of_plus(i, off)) * ld(y, Index::of_plus(i, (q % 3) as i64))
                + ld(z, Index::of_plus(i, ((q + 1) % 4) as i64)) * Expr::Float(0.25 + q as f64),
        ));
    }
    let sum_a = temps[..5]
        .iter()
        .map(|&t| Expr::Var(t))
        .reduce(|a, b| a + b)
        .expect("non-empty");
    let sum_b = temps[5..]
        .iter()
        .map(|&t| Expr::Var(t))
        .reduce(|a, b| a * Expr::Float(0.5) + b)
        .expect("non-empty");
    body.push(k.store(f1, Index::of(i), sum_a));
    body.push(k.store(f2, Index::of(i), sum_b));
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), body));
    k
}

/// DYFESM: structural dynamics with *few dominant control paths* — a
/// 50/50 data-dependent conditional whose arms contain stores (so neither
/// predication nor safe speculation applies). Trace scheduling picks one
/// arm and loses on the other, as in the paper (§5.2).
fn dyfesm_kernel() -> Kernel {
    const N: i64 = 1800;
    const M: i64 = 16;
    let mut k = Kernel::new("DYFESM");
    let mask = k.array("mask", N as u64, ArrayInit::Random(0xdf01));
    let a = k.array("a", N as u64, ArrayInit::Random(0xdf02));
    let b = k.array("b", N as u64, ArrayInit::Random(0xdf03));
    let u = k.array("u", N as u64, ArrayInit::Zero);
    let v = k.array("v", N as u64, ArrayInit::Zero);
    let w = k.array("w", N as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let body = vec![Stmt::If {
        cond: Expr::cmp(CmpOp::Lt, ld(mask, Index::of(i)), Expr::Float(0.5)),
        then_: vec![
            k.store(
                u,
                Index::of(i),
                ld(a, Index::of(i)) * Expr::Float(2.0) + ld(b, Index::of(i)),
            ),
            k.store(v, Index::of(i), ld(a, Index::of(i)) - ld(b, Index::of(i))),
        ],
        else_: vec![
            k.store(
                u,
                Index::of(i),
                ld(b, Index::of(i)) * Expr::Float(3.0) - ld(a, Index::of(i)),
            ),
            k.store(w, Index::of(i), ld(a, Index::of(i)) * ld(b, Index::of(i))),
        ],
    }];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), body));

    // A small displacement solve (dense matrix-vector product).
    let km = k.array("K", (M * M) as u64, ArrayInit::Random(0xdf04));
    let d = k.array("d", M as u64, ArrayInit::Random(0xdf05));
    let out = k.array("out", M as u64, ArrayInit::Zero);
    let r = k.int_var("r");
    let c = k.int_var("c");
    let s = k.float_var("s");
    let inner = vec![k.assign(
        s,
        Expr::Var(s) + ld(km, idx2(r, M, c)) * ld(d, Index::of(c)),
    )];
    let outer = vec![
        k.assign(s, Expr::Float(0.0)),
        k.for_loop(c, Expr::Int(0), Expr::Int(M), inner),
        k.store(out, Index::of(r), Expr::Var(s)),
    ];
    k.push(k.for_loop(r, Expr::Int(0), Expr::Int(M), outer));
    k
}

/// MDG: molecular dynamics of water — distance computations with square
/// roots and divides (long fixed-latency chains) plus a predicable
/// cutoff, so non-load interlocks compete with load interlocks.
fn mdg_kernel() -> Kernel {
    const N: i64 = 2200;
    let mut k = Kernel::new("MDG");
    let x = k.array("x", N as u64, ArrayInit::Random(0x3d61));
    let y = k.array("y", N as u64, ArrayInit::Random(0x3d62));
    let z = k.array("z", N as u64, ArrayInit::Random(0x3d63));
    let f = k.array("f", N as u64, ArrayInit::Zero);
    let energy = k.array("energy", 8, ArrayInit::Zero);
    let i = k.int_var("i");
    let e = k.float_var("e");
    let dx = k.float_var("dx");
    let dy = k.float_var("dy");
    let dz = k.float_var("dz");
    let r2 = k.float_var("r2");
    let inv = k.float_var("inv");

    k.push(k.assign(e, Expr::Float(0.0)));
    let body = vec![
        k.assign(dx, ld(x, Index::of(i)) - Expr::Float(0.5)),
        k.assign(dy, ld(y, Index::of(i)) - Expr::Float(0.25)),
        k.assign(dz, ld(z, Index::of(i)) - Expr::Float(0.75)),
        k.assign(
            r2,
            Expr::Var(dx) * Expr::Var(dx)
                + Expr::Var(dy) * Expr::Var(dy)
                + Expr::Var(dz) * Expr::Var(dz),
        ),
        k.assign(
            inv,
            Expr::div(
                Expr::Float(1.0),
                Expr::sqrt(Expr::Var(r2)) + Expr::Float(0.01),
            ),
        ),
        // Cutoff: contributions beyond the shell are zeroed (predicable
        // at the source level — a select, like Multiflow's cmov).
        k.assign(
            inv,
            Expr::select(
                Expr::cmp(CmpOp::Lt, Expr::Var(r2), Expr::Float(0.9)),
                Expr::Var(inv),
                Expr::Float(0.0),
            ),
        ),
        k.assign(e, Expr::Var(e) + Expr::Var(inv)),
        k.store(f, Index::of(i), Expr::Var(inv) * Expr::Var(dx)),
    ];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), body));
    k.push(k.store(energy, Index::constant(0), Expr::Var(e)));
    k
}

/// QCD2: lattice-gauge simulation — *many short loops with small basic
/// blocks*, so branch overhead is high and little load-level parallelism
/// exists per block (balanced scheduling gains little, §5.1).
fn qcd2_kernel() -> Kernel {
    const S: i64 = 32;
    const EPOCHS: i64 = 50;
    let mut k = Kernel::new("QCD2");
    let ur = k.array("ur", S as u64, ArrayInit::Random(0x9cd1));
    let ui = k.array("ui", S as u64, ArrayInit::Random(0x9cd2));
    let vr = k.array("vr", S as u64, ArrayInit::Random(0x9cd3));
    let vi = k.array("vi", S as u64, ArrayInit::Random(0x9cd4));
    let acc = k.array("acc", 8, ArrayInit::Zero);
    let t = k.int_var("t");
    let s = k.int_var("s");
    let a = k.float_var("a");

    // Complex multiply, one tiny loop per component (small blocks).
    let l1 = vec![k.store(
        ur,
        Index::of(s),
        ld(ur, Index::of(s)) * ld(vr, Index::of(s)) - ld(ui, Index::of(s)) * ld(vi, Index::of(s)),
    )];
    let l2 = vec![k.store(
        ui,
        Index::of(s),
        ld(ur, Index::of(s)) * ld(vi, Index::of(s)) + ld(ui, Index::of(s)) * ld(vr, Index::of(s)),
    )];
    let l3 = vec![k.assign(a, Expr::Var(a) + ld(ur, Index::of(s)) * Expr::Float(1e-3))];
    let epoch = vec![
        k.for_loop(s, Expr::Int(0), Expr::Int(S), l1),
        k.for_loop(s, Expr::Int(0), Expr::Int(S), l2),
        k.for_loop(s, Expr::Int(0), Expr::Int(S), l3),
    ];
    k.push(k.assign(a, Expr::Float(0.0)));
    k.push(k.for_loop(t, Expr::Int(0), Expr::Int(EPOCHS), epoch));
    k.push(k.store(acc, Index::constant(0), Expr::Var(a)));
    k
}

/// TRFD: two-electron integral transformation — dense inner products
/// with several simultaneously live accumulators, so unrolling by 8
/// raises register pressure into spill territory (paper §5.1: "the
/// increase in spill instructions offset the reduction in branch
/// overhead").
fn trfd_kernel() -> Kernel {
    const M: i64 = 48;
    let mut k = Kernel::new("TRFD");
    let xm = k.array("X", (M * M) as u64, ArrayInit::Random(0x7f41));
    let v1 = k.array("v1", M as u64, ArrayInit::Random(0x7f42));
    let v2 = k.array("v2", M as u64, ArrayInit::Random(0x7f43));
    let o1 = k.array("o1", M as u64, ArrayInit::Zero);
    let o2 = k.array("o2", M as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");
    let a1 = k.float_var("a1");
    let a2 = k.float_var("a2");
    let a3 = k.float_var("a3");
    let a4 = k.float_var("a4");

    let inner = vec![
        k.assign(
            a1,
            Expr::Var(a1) + ld(xm, idx2(i, M, j)) * ld(v1, Index::of(j)),
        ),
        k.assign(
            a2,
            Expr::Var(a2) + ld(xm, idx2(i, M, j)) * ld(v2, Index::of(j)),
        ),
        k.assign(
            a3,
            Expr::Var(a3) + ld(xm, idx2(i, M, j)) * ld(v1, Index::of(j)) * Expr::Float(0.5),
        ),
        k.assign(
            a4,
            Expr::Var(a4) + ld(xm, idx2(i, M, j)) * ld(v2, Index::of(j)) * Expr::Float(0.25),
        ),
    ];
    let outer = vec![
        k.assign(a1, Expr::Float(0.0)),
        k.assign(a2, Expr::Float(0.0)),
        k.assign(a3, Expr::Float(0.0)),
        k.assign(a4, Expr::Float(0.0)),
        k.for_loop(j, Expr::Int(0), Expr::Int(M), inner),
        k.store(o1, Index::of(i), Expr::Var(a1) + Expr::Var(a3)),
        k.store(o2, Index::of(i), Expr::Var(a2) - Expr::Var(a4)),
    ];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(M), outer));
    k
}

/// The Perfect Club kernels, in Table 1 order.
pub(super) fn kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "ARC2D",
            suite: Suite::PerfectClub,
            lang: "Fortran",
            description: "Two-dimensional fluid flow problem solver using Euler equations",
            shape: "unrollable 2-D stencil sweeps with abundant independent loads",
            build: arc2d,
        },
        KernelSpec {
            name: "BDNA",
            suite: Suite::PerfectClub,
            lang: "Fortran",
            description: "Simulation of hydration structure and dynamics of nucleic acids",
            shape: "very large basic blocks; unrolling disabled by the size limit",
            build: bdna,
        },
        KernelSpec {
            name: "DYFESM",
            suite: Suite::PerfectClub,
            lang: "Fortran",
            description: "Structural dynamics benchmark to solve displacements and stresses",
            shape: "50/50 data-dependent branch with stores in both arms (few dominant paths)",
            build: dyfesm,
        },
        KernelSpec {
            name: "MDG",
            suite: Suite::PerfectClub,
            lang: "Fortran",
            description: "Molecular dynamic simulation of flexible water molecules",
            shape: "sqrt/divide chains plus a predicable cutoff",
            build: mdg,
        },
        KernelSpec {
            name: "QCD2",
            suite: Suite::PerfectClub,
            lang: "Fortran",
            description: "Lattice-gauge QCD simulation",
            shape: "many short loops with small basic blocks",
            build: qcd2,
        },
        KernelSpec {
            name: "TRFD",
            suite: Suite::PerfectClub,
            lang: "Fortran",
            description: "Two-electron integral transformation",
            shape: "multi-accumulator inner products; unroll-by-8 spills",
            build: trfd,
        },
    ]
}

fn arc2d() -> Program {
    arc2d_kernel().lower()
}
fn bdna() -> Program {
    bdna_kernel().lower()
}
fn dyfesm() -> Program {
    dyfesm_kernel().lower()
}
fn mdg() -> Program {
    mdg_kernel().lower()
}
fn qcd2() -> Program {
    qcd2_kernel().lower()
}
fn trfd() -> Program {
    trfd_kernel().lower()
}

/// The kernels of this module as un-lowered [`Kernel`]s (for the textual
/// round-trip tests and the pretty-printer).
pub(super) fn kernel_sources() -> Vec<super::KernelSource> {
    vec![
        ("arc2d", arc2d_kernel as fn() -> Kernel),
        ("bdna", bdna_kernel as fn() -> Kernel),
        ("dyfesm", dyfesm_kernel as fn() -> Kernel),
        ("mdg", mdg_kernel as fn() -> Kernel),
        ("qcd2", qcd2_kernel as fn() -> Kernel),
        ("trfd", trfd_kernel as fn() -> Kernel),
    ]
}
