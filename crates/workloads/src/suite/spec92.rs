//! SPEC92 kernels: alvinn, dnasa7, doduc, ear, hydro2d, mdljdp2, ora,
//! spice2g6, su2cor, swm256, tomcatv.

use super::{idx2, KernelSpec, Suite};
use crate::lang::ast::{CmpOp, Expr, Index, Stmt};
use crate::lang::{ArrayInit, Kernel};
use bsched_ir::Program;

fn ld(arr: crate::lang::ast::ArrId, idx: Index) -> Expr {
    Expr::load(arr, idx)
}

/// alvinn: neural-network back-propagation — dot products whose serial
/// accumulator chains are fixed-latency bound; unrolling removes lots of
/// overhead but balanced scheduling gains little (paper: TS occasionally
/// wins here, §5.1).
fn alvinn_kernel() -> Kernel {
    const IN: i64 = 256;
    const HID: i64 = 24;
    let mut k = Kernel::new("alvinn");
    let w = k.array("w", (HID * IN) as u64, ArrayInit::Random(0xa111));
    let x = k.array("x", IN as u64, ArrayInit::Random(0xa112));
    let hid = k.array("hid", HID as u64, ArrayInit::Zero);
    let err = k.array("err", HID as u64, ArrayInit::Random(0xa113));
    let h = k.int_var("h");
    let i = k.int_var("i");
    let s = k.float_var("s");

    // Forward pass: hid[h] = Σ w[h][i]·x[i].
    let dot = vec![k.assign(
        s,
        Expr::Var(s) + ld(w, idx2(h, IN, i)) * ld(x, Index::of(i)),
    )];
    let fwd = vec![
        k.assign(s, Expr::Float(0.0)),
        k.for_loop(i, Expr::Int(0), Expr::Int(IN), dot),
        k.store(hid, Index::of(h), Expr::Var(s) * Expr::Float(0.1)),
    ];
    k.push(k.for_loop(h, Expr::Int(0), Expr::Int(HID), fwd));

    // Weight update: w[h][i] += lr·err[h]·x[i].
    let upd = vec![k.store(
        w,
        idx2(h, IN, i),
        ld(w, idx2(h, IN, i)) + ld(err, Index::of(h)) * ld(x, Index::of(i)) * Expr::Float(0.01),
    )];
    let bwd = vec![k.for_loop(i, Expr::Int(0), Expr::Int(IN), upd)];
    k.push(k.for_loop(h, Expr::Int(0), Expr::Int(HID), bwd));
    k
}

/// dnasa7: NASA matrix-manipulation kernels — matrix multiply plus wide
/// element-wise sweeps with many independent streams: the paper's biggest
/// balanced-scheduling win (speedups near 1.8 over TS).
fn dnasa7_kernel() -> Kernel {
    const N: i64 = 16;
    const NI: i64 = 48;
    const NJ: i64 = 64;
    let mut k = Kernel::new("dnasa7");
    // MXM.
    let a = k.array("A", (N * N) as u64, ArrayInit::Random(0xd471));
    let b = k.array("B", (N * N) as u64, ArrayInit::Random(0xd472));
    let c = k.array("C", (N * N) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");
    let kk = k.int_var("kk");
    let s = k.float_var("s");
    let dot = vec![k.assign(
        s,
        Expr::Var(s) + ld(a, idx2(i, N, kk)) * ld(b, idx2(kk, N, j)),
    )];
    let col = vec![
        k.assign(s, Expr::Float(0.0)),
        k.for_loop(kk, Expr::Int(0), Expr::Int(N), dot),
        k.store(c, idx2(i, N, j), Expr::Var(s)),
    ];
    let row = vec![k.for_loop(j, Expr::Int(0), Expr::Int(N), col)];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), row));

    // Wide element-wise sweep over four independent streams.
    let e1 = k.array("E1", (NI * NJ) as u64, ArrayInit::Random(0xd473));
    let e2 = k.array("E2", (NI * NJ) as u64, ArrayInit::Random(0xd474));
    let e3 = k.array("E3", (NI * NJ) as u64, ArrayInit::Random(0xd475));
    let e4 = k.array("E4", (NI * NJ) as u64, ArrayInit::Zero);
    let sweep = vec![k.store(
        e4,
        idx2(i, NJ, j),
        ld(e1, idx2(i, NJ, j)) * Expr::Float(1.1)
            + ld(e2, idx2(i, NJ, j)) * Expr::Float(0.9)
            + ld(e3, idx2(i, NJ, j)) * ld(e1, idx2(i, NJ, j)),
    )];
    let sweep_rows = vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ), sweep)];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(NI), sweep_rows));
    k
}

/// doduc: Monte Carlo reactor simulation — hot loops with *multiple
/// internal conditionals* whose arms store (not predicable, so never
/// unrolled) and plenty of divides.
fn doduc_kernel() -> Kernel {
    const N: i64 = 1100;
    let mut k = Kernel::new("doduc");
    let a = k.array("a", N as u64, ArrayInit::Random(0xd0d1));
    let b = k.array("b", N as u64, ArrayInit::Random(0xd0d2));
    let u = k.array("u", N as u64, ArrayInit::Zero);
    let v = k.array("v", N as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let body = vec![
        Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, ld(a, Index::of(i)), Expr::Float(0.3)),
            then_: vec![k.store(
                u,
                Index::of(i),
                Expr::div(ld(a, Index::of(i)), ld(b, Index::of(i)) + Expr::Float(0.5)),
            )],
            else_: vec![k.store(u, Index::of(i), ld(a, Index::of(i)) * ld(b, Index::of(i)))],
        },
        Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, ld(b, Index::of(i)), Expr::Float(0.6)),
            then_: vec![k.store(
                v,
                Index::of(i),
                Expr::div(ld(b, Index::of(i)), ld(a, Index::of(i)) + Expr::Float(1.0)),
            )],
            else_: vec![k.store(v, Index::of(i), ld(b, Index::of(i)) * Expr::Float(0.5))],
        },
    ];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), body));
    k
}

/// ear: cochlea simulation — cascaded IIR filters: a serial
/// floating-point recurrence with almost no load-level parallelism, so
/// traditional scheduling's preference for fixed-latency operations can
/// win (paper: 0.93–0.95).
fn ear_kernel() -> Kernel {
    const N: i64 = 4000;
    let mut k = Kernel::new("ear");
    let x = k.array("x", N as u64, ArrayInit::Random(0xea71));
    let out = k.array("out", N as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let y1 = k.float_var("y1");
    let y2 = k.float_var("y2");
    let y3 = k.float_var("y3");
    k.push(k.assign(y1, Expr::Float(0.0)));
    k.push(k.assign(y2, Expr::Float(0.0)));
    k.push(k.assign(y3, Expr::Float(0.0)));
    let body = vec![
        k.assign(
            y1,
            Expr::Var(y1) * Expr::Float(0.7) + ld(x, Index::of(i)) * Expr::Float(0.3),
        ),
        k.assign(
            y2,
            Expr::Var(y2) * Expr::Float(0.6) + Expr::Var(y1) * Expr::Float(0.4),
        ),
        k.assign(
            y3,
            Expr::Var(y3) * Expr::Float(0.5) + Expr::Var(y2) * Expr::Float(0.5),
        ),
        k.store(out, Index::of(i), Expr::Var(y3)),
    ];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), body));
    k
}

/// hydro2d: Navier–Stokes sweeps over arrays larger than the L2 cache —
/// long-latency loads with plenty of independent work to hide them.
fn hydro2d_kernel() -> Kernel {
    const NI: i64 = 48;
    const NJ: i64 = 96;
    let mut k = Kernel::new("hydro2d");
    let ro = k.array("ro", (NI * NJ) as u64, ArrayInit::Random(0x42d1));
    let px = k.array("px", (NI * NJ) as u64, ArrayInit::Random(0x42d2));
    let py = k.array("py", (NI * NJ) as u64, ArrayInit::Random(0x42d3));
    let fx = k.array("fx", (NI * NJ) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");

    let flux = vec![k.store(
        fx,
        idx2(i, NJ, j),
        ld(px, idx2(i, NJ, j)) * ld(ro, idx2(i, NJ, j))
            + ld(py, idx2(i, NJ, j)) * Expr::Float(0.5)
            + ld(px, Index::two(i, NJ, j, 1, NJ)) * Expr::Float(0.25)
            - ld(px, Index::two(i, NJ, j, 1, -NJ)) * Expr::Float(0.25),
    )];
    let rows = vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ), flux)];
    k.push(k.for_loop(i, Expr::Int(1), Expr::Int(NI - 1), rows));

    let relax = vec![k.store(
        ro,
        idx2(i, NJ, j),
        ld(ro, idx2(i, NJ, j)) + ld(fx, idx2(i, NJ, j)) * Expr::Float(0.1),
    )];
    let rows2 = vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ), relax)];
    k.push(k.for_loop(i, Expr::Int(1), Expr::Int(NI - 1), rows2));
    k
}

/// mdljdp2: molecular dynamics with cutoff tests — more than one internal
/// conditional with stores, so the loop is never unrolled (paper §5.1:
/// dynamic count changes by only 0.4%).
fn mdljdp2_kernel() -> Kernel {
    const N: i64 = 2400;
    let mut k = Kernel::new("mdljdp2");
    let x = k.array("x", N as u64, ArrayInit::Random(0x3d11));
    let y = k.array("y", N as u64, ArrayInit::Random(0x3d12));
    let f = k.array("f", N as u64, ArrayInit::Zero);
    let cnt = k.array("cnt", N as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let r2 = k.float_var("r2");
    let body = vec![
        k.assign(
            r2,
            ld(x, Index::of(i)) * ld(x, Index::of(i)) + ld(y, Index::of(i)) * ld(y, Index::of(i)),
        ),
        Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(r2), Expr::Float(0.8)),
            then_: vec![k.store(
                f,
                Index::of(i),
                Expr::div(Expr::Float(1.0), Expr::Var(r2) + Expr::Float(0.1)),
            )],
            else_: vec![k.store(f, Index::of(i), Expr::Float(0.0))],
        },
        Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(r2), Expr::Float(0.2)),
            then_: vec![k.store(cnt, Index::of(i), ld(cnt, Index::of(i)) + Expr::Float(1.0))],
            else_: vec![],
        },
    ];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), body));
    k
}

/// ora: ray tracing through an optical system — "most of the execution
/// time is spent in a large, loop-free subroutine": one giant
/// straight-line body over scalars with sqrt/divide chains, data living
/// in registers, and essentially no load interlocks.
fn ora_kernel() -> Kernel {
    const RAYS: i64 = 350;
    let mut k = Kernel::new("ora");
    let params = k.array("params", 16, ArrayInit::Random(0x06a1));
    let out = k.array("out", RAYS as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let dir = k.float_var("dir");
    let pos = k.float_var("pos");
    let tmp = k.float_var("tmp");
    let acc = k.float_var("acc");

    let mut body = Vec::new();
    body.push(k.assign(
        pos,
        Expr::IntToFloat(Box::new(Expr::Var(i))) * Expr::Float(1e-3),
    ));
    body.push(k.assign(dir, ld(params, Index::constant(0)) + Expr::Var(pos)));
    body.push(k.assign(acc, Expr::Float(0.0)));
    // Eight surfaces, each a refraction step: a long scalar chain.
    for srf in 0..8 {
        let curv = 0.1 + 0.05 * srf as f64;
        body.push(k.assign(
            tmp,
            Expr::sqrt(
                Expr::Var(dir) * Expr::Var(dir)
                    + Expr::Var(pos) * Expr::Var(pos)
                    + Expr::Float(curv),
            ),
        ));
        body.push(k.assign(
            dir,
            Expr::div(
                Expr::Var(dir) + Expr::Float(curv),
                Expr::Var(tmp) + Expr::Float(1.0),
            ),
        ));
        body.push(k.assign(pos, Expr::Var(pos) + Expr::Var(dir) * Expr::Float(0.5)));
        body.push(k.assign(acc, Expr::Var(acc) + Expr::Var(tmp)));
    }
    body.push(k.store(out, Index::of(i), Expr::Var(acc)));
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(RAYS), body));
    k
}

/// spice2g6: circuit simulation — irregular, *dynamically indexed* loads
/// chained through a table far larger than the L1: the serial pointer
/// chase produces load interlocks no scheduler can hide (paper: ~30% of
/// cycles remain load interlocks under every configuration).
fn spice2g6_kernel() -> Kernel {
    const TABLE: i64 = 12 * 1024; // 96 KB
    const STEPS: i64 = 5000;
    let mut k = Kernel::new("spice2g6");
    // Pseudo-random successor table (deterministic host-side generation).
    let next: Vec<f64> = (0..TABLE)
        .map(|q| ((q * 7919 + 131) % TABLE) as f64)
        .collect();
    let tbl = k.array("next", TABLE as u64, ArrayInit::Values(next));
    let vals = k.array("vals", TABLE as u64, ArrayInit::Random(0x59ce));
    let out = k.array("out", 8, ArrayInit::Zero);
    let t = k.int_var("t");
    let cur = k.int_var("cur");
    let acc = k.float_var("acc");
    let v = k.float_var("v");
    k.push(k.assign(cur, Expr::Int(0)));
    k.push(k.assign(acc, Expr::Float(0.0)));
    let body = vec![
        // v = next[cur]; cur = int(v) — a pure pointer chase: every load's
        // address depends on the previous load's value, so no schedule can
        // overlap the misses (the paper's spice2g6 keeps ~30% of its
        // cycles in load interlocks under every configuration).
        k.assign(v, ld(tbl, Index::Dyn(Box::new(Expr::Var(cur))))),
        k.assign(cur, Expr::FloatToInt(Box::new(Expr::Var(v)))),
        // Device-model arithmetic on the fetched value.
        k.assign(
            acc,
            Expr::Var(acc)
                + Expr::select(
                    Expr::cmp(CmpOp::Lt, Expr::Var(v), Expr::Float(6000.0)),
                    Expr::Var(v) * Expr::Float(1e-6),
                    Expr::Var(v) * Expr::Float(2e-6),
                ),
        ),
    ];
    k.push(k.for_loop(t, Expr::Int(0), Expr::Int(STEPS), body));
    k.push(k.store(out, Index::constant(0), Expr::Var(acc)));
    let _ = vals;
    k
}

/// su2cor: quark–gluon mass computation — component-separated (SoA) 3×3
/// matrix-vector products over lattice sites: clean unit-stride unrollable
/// loops (paper: consistent balanced-scheduling wins, 1.18–1.26).
fn su2cor_kernel() -> Kernel {
    const SITES: i64 = 1500;
    let mut k = Kernel::new("su2cor");
    let v0 = k.array("v0", SITES as u64, ArrayInit::Random(0x5211));
    let v1 = k.array("v1", SITES as u64, ArrayInit::Random(0x5212));
    let v2 = k.array("v2", SITES as u64, ArrayInit::Random(0x5213));
    let o0 = k.array("o0", SITES as u64, ArrayInit::Zero);
    let o1 = k.array("o1", SITES as u64, ArrayInit::Zero);
    let o2 = k.array("o2", SITES as u64, ArrayInit::Zero);
    let s = k.int_var("s");
    let m = [[0.8, 0.1, 0.1], [0.2, 0.7, 0.1], [0.1, 0.2, 0.7]];
    let row = |k: &Kernel, out, r: usize| {
        k.store(
            out,
            Index::of(s),
            ld(v0, Index::of(s)) * Expr::Float(m[r][0])
                + ld(v1, Index::of(s)) * Expr::Float(m[r][1])
                + ld(v2, Index::of(s)) * Expr::Float(m[r][2]),
        )
    };
    let l0 = vec![row(&k, o0, 0)];
    let l1 = vec![row(&k, o1, 1)];
    let l2 = vec![row(&k, o2, 2)];
    k.push(k.for_loop(s, Expr::Int(0), Expr::Int(SITES), l0));
    k.push(k.for_loop(s, Expr::Int(0), Expr::Int(SITES), l1));
    k.push(k.for_loop(s, Expr::Int(0), Expr::Int(SITES), l2));
    k
}

/// swm256: shallow-water stencil whose body is just over the factor-4
/// size budget: unrolling by 4 falls back to a factor-2 partial unroll,
/// while the factor-8 budget (128) admits a factor-4 unroll — the paper's
/// footnote-2 phenomenon (LU4 ≈ 1.00, LU8 ≈ 1.44).
fn swm256_kernel() -> Kernel {
    const NI: i64 = 32;
    const NJ: i64 = 64;
    let mut k = Kernel::new("swm256");
    let u = k.array("u", (NI * NJ) as u64, ArrayInit::Random(0x5331));
    let v = k.array("v", (NI * NJ) as u64, ArrayInit::Random(0x5332));
    let p = k.array("p", (NI * NJ) as u64, ArrayInit::Random(0x5333));
    let unew = k.array("unew", (NI * NJ) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");
    // A wide 9-ish-point stencil: ~17-20 instructions after lowering.
    let body = vec![k.store(
        unew,
        idx2(i, NJ, j),
        ld(u, idx2(i, NJ, j))
            + (ld(u, Index::two(i, NJ, j, 1, -NJ)) + ld(u, Index::two(i, NJ, j, 1, NJ))
                - ld(u, idx2(i, NJ, j)) * Expr::Float(2.0))
                * Expr::Float(0.5)
            + ld(v, idx2(i, NJ, j)) * Expr::Float(0.25)
            + ld(p, idx2(i, NJ, j)) * ld(v, idx2(i, NJ, j))
            - ld(p, Index::two(i, NJ, j, 1, -NJ)) * Expr::Float(0.125),
    )];
    let rows = vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ), body)];
    k.push(k.for_loop(i, Expr::Int(1), Expr::Int(NI - 1), rows));

    let relax = vec![k.store(
        v,
        idx2(i, NJ, j),
        ld(v, idx2(i, NJ, j)) + ld(unew, idx2(i, NJ, j)) * Expr::Float(0.05),
    )];
    let rows2 = vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ), relax)];
    k.push(k.for_loop(i, Expr::Int(1), Expr::Int(NI - 1), rows2));
    k
}

/// tomcatv: mesh generation — long sequential sweeps over large,
/// *read-only* arrays: the locality-analysis best case (paper: LA speedup
/// 1.5 on this program).
fn tomcatv_kernel() -> Kernel {
    const NI: i64 = 96;
    const NJ: i64 = 128;
    let mut k = Kernel::new("tomcatv");
    let x = k.array("X", (NI * NJ) as u64, ArrayInit::Random(0x70c1));
    let y = k.array("Y", (NI * NJ) as u64, ArrayInit::Random(0x70c2));
    let rx = k.array("RX", (NI * NJ) as u64, ArrayInit::Zero);
    let ry = k.array("RY", (NI * NJ) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");
    let body = vec![
        k.store(
            rx,
            idx2(i, NJ, j),
            ld(x, idx2(i, NJ, j)) * Expr::Float(2.0)
                - ld(x, Index::two(i, NJ, j, 1, NJ))
                - ld(x, Index::two(i, NJ, j, 1, -NJ))
                + ld(y, idx2(i, NJ, j)) * Expr::Float(0.5),
        ),
        k.store(
            ry,
            idx2(i, NJ, j),
            ld(y, idx2(i, NJ, j)) * Expr::Float(2.0)
                - ld(y, Index::two(i, NJ, j, 1, NJ))
                - ld(y, Index::two(i, NJ, j, 1, -NJ))
                + ld(x, idx2(i, NJ, j)) * Expr::Float(0.5),
        ),
    ];
    let rows = vec![k.for_loop(j, Expr::Int(0), Expr::Int(NJ), body)];
    k.push(k.for_loop(i, Expr::Int(1), Expr::Int(NI - 1), rows));
    k
}

/// The SPEC92 kernels, in Table 1 order.
pub(super) fn kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "alvinn",
            suite: Suite::Spec92,
            lang: "C",
            description: "Trains a neural network using back propagation",
            shape: "serial dot-product accumulator chains",
            build: alvinn,
        },
        KernelSpec {
            name: "dnasa7",
            suite: Suite::Spec92,
            lang: "Fortran",
            description: "Matrix manipulation routines",
            shape: "matrix multiply + wide independent element-wise streams",
            build: dnasa7,
        },
        KernelSpec {
            name: "doduc",
            suite: Suite::Spec92,
            lang: "Fortran",
            description:
                "Monte Carlo simulation of the time evolution of a nuclear reactor component",
            shape: "multiple un-predicable conditionals per loop; divide heavy",
            build: doduc,
        },
        KernelSpec {
            name: "ear",
            suite: Suite::Spec92,
            lang: "C",
            description: "Simulates the propagation of sound in the human cochlea",
            shape: "serial IIR filter recurrences (fixed-latency bound)",
            build: ear,
        },
        KernelSpec {
            name: "hydro2d",
            suite: Suite::Spec92,
            lang: "Fortran",
            description: "Solves hydrodynamical Navier Stokes equations to compute galactical jets",
            shape: "2-D sweeps over arrays larger than the L2",
            build: hydro2d,
        },
        KernelSpec {
            name: "mdljdp2",
            suite: Suite::Spec92,
            lang: "Fortran",
            description: "Chemical application program that solves equations of motion for atoms",
            shape: "cutoff conditionals with stores; never unrolled",
            build: mdljdp2,
        },
        KernelSpec {
            name: "ora",
            suite: Suite::Spec92,
            lang: "Fortran",
            description:
                "Traces rays through an optical system composed of spherical and planar surfaces",
            shape: "one large loop-free scalar body; ~zero load interlocks",
            build: ora,
        },
        KernelSpec {
            name: "spice2g6",
            suite: Suite::Spec92,
            lang: "Fortran",
            description: "Circuit simulation package",
            shape: "serially dependent dynamic-index loads through a 96 KB table",
            build: spice2g6,
        },
        KernelSpec {
            name: "su2cor",
            suite: Suite::Spec92,
            lang: "Fortran",
            description:
                "Computes masses of elementary particles in the framework of the Quark-Gluon theory",
            shape: "unit-stride SoA matrix-vector sweeps",
            build: su2cor,
        },
        KernelSpec {
            name: "swm256",
            suite: Suite::Spec92,
            lang: "Fortran",
            description: "Solves shallow water equations using finite difference equations",
            shape: "stencil body just over the factor-4 unroll budget",
            build: swm256,
        },
        KernelSpec {
            name: "tomcatv",
            suite: Suite::Spec92,
            lang: "Fortran",
            description: "Vectorized mesh generation program",
            shape: "sequential sweeps over large read-only arrays (LA best case)",
            build: tomcatv,
        },
    ]
}

fn alvinn() -> Program {
    alvinn_kernel().lower()
}
fn dnasa7() -> Program {
    dnasa7_kernel().lower()
}
fn doduc() -> Program {
    doduc_kernel().lower()
}
fn ear() -> Program {
    ear_kernel().lower()
}
fn hydro2d() -> Program {
    hydro2d_kernel().lower()
}
fn mdljdp2() -> Program {
    mdljdp2_kernel().lower()
}
fn ora() -> Program {
    ora_kernel().lower()
}
fn spice2g6() -> Program {
    spice2g6_kernel().lower()
}
fn su2cor() -> Program {
    su2cor_kernel().lower()
}
fn swm256() -> Program {
    swm256_kernel().lower()
}
fn tomcatv() -> Program {
    tomcatv_kernel().lower()
}

/// The kernels of this module as un-lowered [`Kernel`]s (for the textual
/// round-trip tests and the pretty-printer).
pub(super) fn kernel_sources() -> Vec<super::KernelSource> {
    vec![
        ("alvinn", alvinn_kernel as fn() -> Kernel),
        ("dnasa7", dnasa7_kernel as fn() -> Kernel),
        ("doduc", doduc_kernel as fn() -> Kernel),
        ("ear", ear_kernel as fn() -> Kernel),
        ("hydro2d", hydro2d_kernel as fn() -> Kernel),
        ("mdljdp2", mdljdp2_kernel as fn() -> Kernel),
        ("ora", ora_kernel as fn() -> Kernel),
        ("spice2g6", spice2g6_kernel as fn() -> Kernel),
        ("su2cor", su2cor_kernel as fn() -> Kernel),
        ("swm256", swm256_kernel as fn() -> Kernel),
        ("tomcatv", tomcatv_kernel as fn() -> Kernel),
    ]
}
