//! `bsched-workloads` — the loop-language frontend and the 17 synthetic
//! kernels standing in for the paper's Perfect Club / SPEC92 workload.
//!
//! The paper compiled Fortran/C numeric programs with the Multiflow
//! compiler. We cannot redistribute those programs; instead [`lang`]
//! provides a compact structured loop language (arrays, affine indices,
//! scalars, `for`, `if`) whose lowering produces exactly the canonical
//! counted-loop IR shape the optimizations in `bsched-opt` consume, and
//! [`suite`] defines one kernel per paper benchmark whose loop/branch/
//! array structure matches the paper's per-benchmark descriptions (see
//! DESIGN.md §2 for the substitution argument).
//!
//! ```
//! use bsched_workloads::lang::{ArrayInit, Kernel};
//! use bsched_workloads::lang::ast::{Expr, Index};
//!
//! let mut k = Kernel::new("axpy");
//! let x = k.array("x", 64, ArrayInit::Ramp(0.0, 1.0));
//! let y = k.array("y", 64, ArrayInit::Ramp(1.0, 0.5));
//! let i = k.int_var("i");
//! let body = vec![k.store(
//!     y,
//!     Index::of(i),
//!     Expr::load(x, Index::of(i)) * Expr::Float(2.0) + Expr::load(y, Index::of(i)),
//! )];
//! k.push(k.for_loop(i, Expr::Int(0), Expr::Int(64), body));
//! let program = k.lower();
//! assert!(bsched_ir::verify_program(&program).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lang;
pub mod suite;

pub use lang::{parse_kernel, ArrayInit, Kernel, ParseError};
pub use suite::{all_kernels, all_kernels_sources, kernel_by_name, KernelSpec};
