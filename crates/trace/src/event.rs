//! The event model: static identities plus one dynamic record type.

/// The static identity of one instrumentation point: a subsystem
/// category and a point name, both `'static` so recording an event
/// never allocates for identity.
///
/// The well-known points of this workspace live in [`points`]; new
/// points are just new constants — the schema carries the strings, so
/// readers need no registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    /// Subsystem, e.g. `"pipeline"` or `"sim"`.
    pub cat: &'static str,
    /// Point name within the subsystem, e.g. `"pass"`.
    pub name: &'static str,
}

impl TraceId {
    /// A new identity (const, so points can be `pub const`).
    #[must_use]
    pub const fn new(cat: &'static str, name: &'static str) -> Self {
        TraceId { cat, name }
    }
}

/// The instrumentation points wired through the stack. Centralized so
/// tests and sinks can match on identity instead of strings.
pub mod points {
    use super::TraceId;

    /// One full compilation (span). Label: program name. Args:
    /// `before`/`after` static instruction counts.
    pub const PIPELINE_COMPILE: TraceId = TraceId::new("pipeline", "compile");
    /// One optimization/codegen pass inside the pipeline (span). Label:
    /// pass name. Args: `before`/`after` static instruction counts.
    pub const PIPELINE_PASS: TraceId = TraceId::new("pipeline", "pass");
    /// One scheduled straight-line region (instant). Label: function
    /// name. Args: `block`, `insts`, `loads`, `weight_sum`, `weight_max`.
    pub const SCHED_REGION: TraceId = TraceId::new("sched", "region");
    /// One load's scheduling weight (instant, one per load in a
    /// region). Label: function name. Args: `block`, `slot` (the
    /// load's index in the region's original order), `weight` (the
    /// policy's assigned latency weight).
    pub const SCHED_LOAD_WEIGHT: TraceId = TraceId::new("sched", "load_weight");
    /// One exact-search budget exhaustion (instant): the branch-and-
    /// bound arm fell back to its best-found-so-far schedule. Label:
    /// function name. Args: `block`, `insts`, `nodes` (explored),
    /// `best_cost`, `heuristic_cost`.
    pub const SCHED_EXACT_FALLBACK: TraceId = TraceId::new("sched", "exact_fallback");
    /// One simulated run (span). Label: program name. Args: `cycles`,
    /// `load_interlock`.
    pub const SIM_RUN: TraceId = TraceId::new("sim", "run");
    /// Per-static-load interlock attribution (instant, one per load
    /// site that issued). Label: program name. Args: `site`, `block`,
    /// `issued`, `interlock`, `mshr_stall`, `l1`, `l2`, `l3`, `mem` —
    /// `interlock + mshr_stall` summed over sites equals the
    /// simulator's aggregate `load_interlock` counter exactly.
    pub const SIM_LOAD_SITE: TraceId = TraceId::new("sim", "load_site");
    /// One executed harness cell (span). Label: `kernel/config`.
    pub const HARNESS_CELL: TraceId = TraceId::new("harness", "cell");
    /// One conformance violation (instant). Label: the violation
    /// message. Args: `region_count`.
    pub const VERIFY_VIOLATION: TraceId = TraceId::new("verify", "violation");
    /// One trace-scheduling pass over a function (instant). Label:
    /// function name. Args: `traces`, `moved`.
    pub const OPT_TRACE: TraceId = TraceId::new("opt", "trace_schedule");
}

/// Whether an [`Event`] covers a duration or marks a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A region of time (`dur_ns` meaningful).
    Span,
    /// A point in time (`dur_ns == 0`).
    Instant,
}

impl EventKind {
    /// The schema string (`"span"` / `"instant"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        }
    }
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Which instrumentation point recorded it.
    pub id: TraceId,
    /// Span or instant.
    pub kind: EventKind,
    /// Nanoseconds since the process trace epoch (first record).
    pub ts_ns: u64,
    /// Span duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Recording thread: a small dense id in first-record order.
    pub tid: u64,
    /// Dynamic context (kernel name, pass name, cell label); may be
    /// empty. The only owned string per event.
    pub label: String,
    /// Numeric payload, in the order the instrumentation point listed
    /// it. Keys are `'static` — payload shape is part of the point's
    /// contract, not per-event data.
    pub args: Vec<(&'static str, u64)>,
}

impl Event {
    /// Looks up one payload value by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_lookup_finds_values_and_misses_cleanly() {
        let e = Event {
            id: points::SIM_RUN,
            kind: EventKind::Instant,
            ts_ns: 0,
            dur_ns: 0,
            tid: 1,
            label: String::new(),
            args: vec![("cycles", 10), ("load_interlock", 3)],
        };
        assert_eq!(e.arg("cycles"), Some(10));
        assert_eq!(e.arg("load_interlock"), Some(3));
        assert_eq!(e.arg("absent"), None);
    }

    #[test]
    fn trace_ids_order_by_category_then_name() {
        let a = TraceId::new("pipeline", "compile");
        let b = TraceId::new("pipeline", "pass");
        let c = TraceId::new("sim", "run");
        assert!(a < b && b < c);
    }
}
