//! The recorder: a global enable flag, thread-local buffers, and a
//! global collector.
//!
//! Hot-path contract: every instrumentation point first checks
//! [`enabled`] — one relaxed atomic load. Only when tracing is on does
//! it read the clock, format a label, or touch the thread-local buffer.
//! Buffers flush to the collector when full, on [`flush_thread`], and on
//! thread exit, so workers never contend on the hot path.

use crate::event::{Event, EventKind, TraceId};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static COLLECTOR: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Local buffer size that triggers a flush to the collector.
const FLUSH_AT: usize = 256;

fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let e = EPOCH.get_or_init(Instant::now).elapsed();
    u64::try_from(e.as_nanos()).unwrap_or(u64::MAX)
}

struct LocalBuf {
    tid: u64,
    events: Vec<Event>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if !self.events.is_empty() {
            COLLECTOR
                .lock()
                .expect("trace collector poisoned")
                .append(&mut self.events);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

fn record(mut event: Event) {
    // try_with: events recorded during thread teardown (after the
    // buffer's destructor) are dropped rather than panicking.
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        event.tid = l.tid;
        l.events.push(event);
        if l.events.len() >= FLUSH_AT {
            l.flush();
        }
    });
}

/// Whether tracing is currently on. One relaxed atomic load — the only
/// cost instrumentation points pay when tracing is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Enables tracing until the returned guard drops, then restores the
/// previous state. The flag is process-global: overlapping scopes on
/// different threads observe each other (tests that need isolation run
/// the traced work in a subprocess or under a shared lock).
#[must_use]
pub fn enable_scope() -> EnableGuard {
    EnableGuard {
        prev: ENABLED.swap(true, Ordering::SeqCst),
    }
}

/// Restores the previous enable state on drop. See [`enable_scope`].
#[derive(Debug)]
pub struct EnableGuard {
    prev: bool,
}

impl Drop for EnableGuard {
    fn drop(&mut self) {
        ENABLED.store(self.prev, Ordering::SeqCst);
    }
}

/// Records a point-in-time event. No-op (and no allocation) when
/// tracing is off.
pub fn instant(id: TraceId, label: &str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    record(Event {
        id,
        kind: EventKind::Instant,
        ts_ns: now_ns(),
        dur_ns: 0,
        tid: 0,
        label: label.to_string(),
        args: args.to_vec(),
    });
}

/// Opens a span. When tracing is off the returned guard is inert: no
/// clock read, and [`Span::label_with`] never runs its closure.
#[must_use = "a span records its duration when finished or dropped"]
pub fn span(id: TraceId) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    Span {
        data: Some(SpanData {
            id,
            start_ns: now_ns(),
            label: String::new(),
            args: Vec::new(),
        }),
    }
}

#[derive(Debug)]
struct SpanData {
    id: TraceId,
    start_ns: u64,
    label: String,
    args: Vec<(&'static str, u64)>,
}

/// RAII guard for an open span; records one [`EventKind::Span`] event
/// on drop (or [`finish`](Span::finish)). Inert when created with
/// tracing off.
#[derive(Debug)]
#[must_use = "a span records its duration when finished or dropped"]
pub struct Span {
    data: Option<SpanData>,
}

impl Span {
    /// Sets the span label lazily — the closure only runs when the span
    /// is live, so hot paths never format strings with tracing off.
    pub fn label_with(mut self, f: impl FnOnce() -> String) -> Self {
        if let Some(d) = &mut self.data {
            d.label = f();
        }
        self
    }

    /// Appends one payload value (builder style, at open time).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if let Some(d) = &mut self.data {
            d.args.push((key, value));
        }
        self
    }

    /// Whether this span will record an event (tracing was on when it
    /// opened).
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.data.is_some()
    }

    /// Closes the span, appending payload values computed after the
    /// work (e.g. an "after" instruction count).
    pub fn finish(mut self, extra: &[(&'static str, u64)]) {
        if let Some(d) = &mut self.data {
            d.args.extend_from_slice(extra);
        }
        // Drop records.
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            let end = now_ns();
            record(Event {
                id: d.id,
                kind: EventKind::Span,
                ts_ns: d.start_ns,
                dur_ns: end.saturating_sub(d.start_ns),
                tid: 0,
                label: d.label,
                args: d.args,
            });
        }
    }
}

/// Flushes the calling thread's buffer to the global collector. Worker
/// threads call this at natural boundaries (the harness does so after
/// every cell) so [`drain`] on another thread sees their events.
pub fn flush_thread() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
}

/// Flushes the calling thread and takes every collected event.
/// Events still sitting in *other* live threads' buffers are not
/// included — flush those with [`flush_thread`] on their own threads
/// first (finished threads flush on exit automatically).
#[must_use]
pub fn drain() -> Vec<Event> {
    flush_thread();
    std::mem::take(&mut *COLLECTOR.lock().expect("trace collector poisoned"))
}

/// Discards everything collected so far (and the calling thread's
/// buffer).
pub fn clear() {
    let _ = drain();
}

/// Runs `f` with tracing enabled and returns its result together with
/// the events it recorded. Pre-existing uncollected events are
/// discarded first; the previous enable state is restored afterwards.
///
/// The enable flag is process-global, so concurrent captures (or
/// concurrent traced work on other threads) interleave their events;
/// callers that need exact attribution serialize captures.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let prev = ENABLED.swap(true, Ordering::SeqCst);
    clear();
    let result = f();
    let events = drain();
    ENABLED.store(prev, Ordering::SeqCst);
    (result, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::points;

    // The enable flag and collector are process-global; tests that
    // touch them serialize on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing_and_runs_no_closures() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        clear();
        instant(points::SIM_RUN, "x", &[("cycles", 1)]);
        let s = span(points::PIPELINE_PASS).label_with(|| panic!("label closure must not run"));
        assert!(!s.is_live());
        s.finish(&[("after", 2)]);
        assert!(drain().is_empty());
    }

    #[test]
    fn capture_returns_events_and_restores_state() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let (value, events) = capture(|| {
            instant(points::SIM_RUN, "k", &[("cycles", 42)]);
            let sp = span(points::PIPELINE_PASS)
                .label_with(|| "dce".into())
                .arg("before", 10);
            sp.finish(&[("after", 7)]);
            5
        });
        assert_eq!(value, 5);
        assert!(!enabled(), "capture restores the previous state");
        assert_eq!(events.len(), 2);
        let inst = events.iter().find(|e| e.id == points::SIM_RUN).unwrap();
        assert_eq!(inst.kind, EventKind::Instant);
        assert_eq!(inst.arg("cycles"), Some(42));
        let sp = events.iter().find(|e| e.id == points::PIPELINE_PASS).unwrap();
        assert_eq!(sp.kind, EventKind::Span);
        assert_eq!(sp.label, "dce");
        assert_eq!(sp.arg("before"), Some(10));
        assert_eq!(sp.arg("after"), Some(7));
    }

    #[test]
    fn full_buffers_flush_to_the_collector() {
        let _g = TEST_LOCK.lock().unwrap();
        let (_, events) = capture(|| {
            for i in 0..(2 * FLUSH_AT as u64 + 3) {
                instant(points::SCHED_REGION, "", &[("block", i)]);
            }
        });
        assert_eq!(events.len(), 2 * FLUSH_AT + 3);
    }

    #[test]
    fn worker_thread_events_arrive_after_thread_exit() {
        let _g = TEST_LOCK.lock().unwrap();
        let (_, events) = capture(|| {
            std::thread::spawn(|| {
                instant(points::HARNESS_CELL, "from-worker", &[]);
            })
            .join()
            .unwrap();
        });
        assert_eq!(events.len(), 1, "thread exit flushes its buffer");
        assert_eq!(events[0].label, "from-worker");
        let main_tid = LOCAL.with(|l| l.borrow().tid);
        assert_ne!(events[0].tid, main_tid);
    }

    #[test]
    fn enable_scope_nests_and_restores() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        {
            let _outer = enable_scope();
            assert!(enabled());
            {
                let _inner = enable_scope();
                assert!(enabled());
            }
            assert!(enabled(), "inner scope restores to enabled");
        }
        assert!(!enabled());
        clear();
    }
}
