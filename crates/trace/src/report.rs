//! Sinks: versioned JSON export, chrome://tracing spans, a human
//! summary table, and the loudly-versioned reader used by tests.

use crate::event::{points, Event, EventKind};
use bsched_util::json::JsonError;
use bsched_util::Json;
use std::collections::BTreeMap;
use std::fmt;

/// Version of the JSON export schema. Bump on any incompatible change
/// to the document shape; [`ParsedTrace::parse`] refuses documents with
/// any other version instead of misreading them — the same policy as
/// the harness result cache's `CACHE_SCHEMA_VERSION`.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// A finalized set of events, deterministically ordered, ready for
/// export.
#[derive(Debug, Clone)]
pub struct TraceReport {
    events: Vec<Event>,
}

impl TraceReport {
    /// Builds a report, sorting events by static identity, label, and
    /// payload (wall-clock fields only break exact ties). Two runs of
    /// the same deterministic workload therefore export the same event
    /// sequence even though workers raced during recording.
    #[must_use]
    pub fn new(mut events: Vec<Event>) -> Self {
        events.sort_by(|a, b| {
            (a.id, &a.label, &a.args, a.kind, a.ts_ns, a.dur_ns, a.tid).cmp(&(
                b.id, &b.label, &b.args, b.kind, b.ts_ns, b.dur_ns, b.tid,
            ))
        });
        TraceReport { events }
    }

    /// The ordered events.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The machine-readable export:
    /// `{"schema": N, "events": [{cat, name, kind, ts_ns, dur_ns, tid, label, args}]}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("cat", Json::Str(e.id.cat.to_string())),
                    ("name", Json::Str(e.id.name.to_string())),
                    ("kind", Json::Str(e.kind.label().to_string())),
                    ("ts_ns", Json::u64(e.ts_ns)),
                    ("dur_ns", Json::u64(e.dur_ns)),
                    ("tid", Json::u64(e.tid)),
                    ("label", Json::Str(e.label.clone())),
                    (
                        "args",
                        Json::obj(e.args.iter().map(|&(k, v)| (k, Json::u64(v))).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::u64(u64::from(TRACE_SCHEMA_VERSION))),
            ("events", Json::Arr(events)),
        ])
    }

    /// [`to_json`](Self::to_json) serialized compactly.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// A chrome://tracing / Perfetto `traceEvents` document: spans as
    /// complete (`"X"`) events, instants as `"i"`, timestamps in
    /// microseconds.
    #[must_use]
    pub fn to_chrome_json_string(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("cat", Json::Str(e.id.cat.to_string())),
                    ("name", Json::Str(format!("{}.{}", e.id.cat, e.id.name))),
                    ("pid", Json::u64(1)),
                    ("tid", Json::u64(e.tid)),
                    ("ts", Json::Num(e.ts_ns as f64 / 1000.0)),
                ];
                let mut args: Vec<(&str, Json)> = e
                    .args
                    .iter()
                    .map(|&(k, v)| (k, Json::u64(v)))
                    .collect();
                if !e.label.is_empty() {
                    args.push(("label", Json::Str(e.label.clone())));
                }
                match e.kind {
                    EventKind::Span => {
                        fields.push(("ph", Json::Str("X".to_string())));
                        fields.push(("dur", Json::Num(e.dur_ns as f64 / 1000.0)));
                    }
                    EventKind::Instant => {
                        fields.push(("ph", Json::Str("i".to_string())));
                        fields.push(("s", Json::Str("t".to_string())));
                    }
                }
                fields.push(("args", Json::obj(args)));
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![("traceEvents", Json::Arr(events))]).to_string_compact()
    }

    /// The human summary folded into the harness run report on stderr:
    /// per-pass IR growth, scheduler region stats, the heaviest load
    /// sites by attributed interlock, and cell/violation counts.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "── bsched-trace summary ({} events) ──", self.events.len());

        // Per-pass IR sizes, aggregated over compilations, in first-seen
        // order (phase order, since the report sorts ties by label).
        let mut passes: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
        for e in self.events.iter().filter(|e| e.id == points::PIPELINE_PASS) {
            let p = passes.entry(e.label.as_str()).or_default();
            p.0 += 1;
            p.1 += e.arg("before").unwrap_or(0);
            p.2 += e.arg("after").unwrap_or(0);
            p.3 += e.dur_ns;
        }
        if !passes.is_empty() {
            let _ = writeln!(s, "passes (aggregated over compilations):");
            for (name, (calls, before, after, dur)) in &passes {
                let _ = writeln!(
                    s,
                    "  {name:<16} {calls:>5} calls  insts {before:>7} -> {after:>7}  {:>9.3}ms",
                    *dur as f64 / 1e6
                );
            }
        }

        let regions: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| e.id == points::SCHED_REGION)
            .collect();
        if !regions.is_empty() {
            let insts: u64 = regions.iter().filter_map(|e| e.arg("insts")).sum();
            let loads: u64 = regions.iter().filter_map(|e| e.arg("loads")).sum();
            let wmax = regions.iter().filter_map(|e| e.arg("weight_max")).max();
            let _ = writeln!(
                s,
                "scheduler: {} regions, {insts} insts, {loads} loads, max balanced weight {}",
                regions.len(),
                wmax.unwrap_or(0)
            );
        }

        let mut sites: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| e.id == points::SIM_LOAD_SITE)
            .collect();
        if !sites.is_empty() {
            let attributed: u64 = sites
                .iter()
                .map(|e| e.arg("interlock").unwrap_or(0) + e.arg("mshr_stall").unwrap_or(0))
                .sum();
            sites.sort_by_key(|e| {
                std::cmp::Reverse(e.arg("interlock").unwrap_or(0) + e.arg("mshr_stall").unwrap_or(0))
            });
            let _ = writeln!(
                s,
                "load sites: {} issued, {attributed} load-interlock cycles attributed; heaviest:",
                sites.len()
            );
            for e in sites.iter().take(5) {
                let _ = writeln!(
                    s,
                    "  {:<24} site {:>4} block {:>3}: {:>7} interlock, {:>6} mshr, hits l1/l2/l3/mem {}/{}/{}/{}",
                    e.label,
                    e.arg("site").unwrap_or(0),
                    e.arg("block").unwrap_or(0),
                    e.arg("interlock").unwrap_or(0),
                    e.arg("mshr_stall").unwrap_or(0),
                    e.arg("l1").unwrap_or(0),
                    e.arg("l2").unwrap_or(0),
                    e.arg("l3").unwrap_or(0),
                    e.arg("mem").unwrap_or(0),
                )
                ;
            }
        }

        let cells: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| e.id == points::HARNESS_CELL)
            .collect();
        if !cells.is_empty() {
            let dur: u64 = cells.iter().map(|e| e.dur_ns).sum();
            let _ = writeln!(
                s,
                "cells traced: {} spans, {:.3}s total",
                cells.len(),
                dur as f64 / 1e9
            );
        }

        let violations = self
            .events
            .iter()
            .filter(|e| e.id == points::VERIFY_VIOLATION)
            .count();
        if violations > 0 {
            let _ = writeln!(s, "violations traced: {violations}");
        }
        s
    }
}

/// Why a trace document could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceReadError {
    /// The text is not valid JSON.
    Json(JsonError),
    /// The document declares a schema version this reader does not
    /// speak. Old readers fail here — loudly — instead of misparsing.
    SchemaMismatch {
        /// Version found in the document.
        found: u64,
        /// Version this reader supports.
        expected: u32,
    },
    /// Structurally valid JSON that is not a trace document.
    Malformed(&'static str),
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Json(e) => write!(f, "trace is not valid JSON: {} at byte {}", e.msg, e.at),
            TraceReadError::SchemaMismatch { found, expected } => write!(
                f,
                "trace schema v{found} is not supported by this reader (expects v{expected}); \
                 refusing to parse"
            ),
            TraceReadError::Malformed(what) => write!(f, "malformed trace document: {what}"),
        }
    }
}

impl std::error::Error for TraceReadError {}

/// One event read back from a JSON export: the owned-string twin of
/// [`Event`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ParsedEvent {
    /// Subsystem category.
    pub cat: String,
    /// Point name.
    pub name: String,
    /// `"span"` or `"instant"`.
    pub kind: String,
    /// Label (may be empty).
    pub label: String,
    /// Payload, key-sorted.
    pub args: BTreeMap<String, u64>,
    /// Nanoseconds since the recording process's trace epoch.
    pub ts_ns: u64,
    /// Span duration.
    pub dur_ns: u64,
    /// Recording thread id.
    pub tid: u64,
}

/// A trace document read back from its JSON export, schema-checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTrace {
    events: Vec<ParsedEvent>,
}

impl ParsedTrace {
    /// Parses and validates a [`TraceReport::to_json_string`] document.
    ///
    /// # Errors
    ///
    /// [`TraceReadError::Json`] for invalid JSON,
    /// [`TraceReadError::SchemaMismatch`] for any schema version other
    /// than [`TRACE_SCHEMA_VERSION`], [`TraceReadError::Malformed`] for
    /// structural problems.
    pub fn parse(text: &str) -> Result<Self, TraceReadError> {
        let doc = Json::parse(text).map_err(TraceReadError::Json)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or(TraceReadError::Malformed("missing schema version"))?;
        if schema != u64::from(TRACE_SCHEMA_VERSION) {
            return Err(TraceReadError::SchemaMismatch {
                found: schema,
                expected: TRACE_SCHEMA_VERSION,
            });
        }
        let Some(Json::Arr(raw)) = doc.get("events") else {
            return Err(TraceReadError::Malformed("missing events array"));
        };
        let mut events = Vec::with_capacity(raw.len());
        for e in raw {
            let field = |k: &'static str| -> Result<&Json, TraceReadError> {
                e.get(k).ok_or(TraceReadError::Malformed("event missing a field"))
            };
            let str_field = |k: &'static str| -> Result<String, TraceReadError> {
                Ok(field(k)?
                    .as_str()
                    .ok_or(TraceReadError::Malformed("event field has the wrong type"))?
                    .to_string())
            };
            let num_field = |k: &'static str| -> Result<u64, TraceReadError> {
                field(k)?
                    .as_u64()
                    .ok_or(TraceReadError::Malformed("event field has the wrong type"))
            };
            let kind = str_field("kind")?;
            if kind != "span" && kind != "instant" {
                return Err(TraceReadError::Malformed("unknown event kind"));
            }
            let Json::Obj(raw_args) = field("args")? else {
                return Err(TraceReadError::Malformed("event args is not an object"));
            };
            let mut args = BTreeMap::new();
            for (k, v) in raw_args {
                let v = v
                    .as_u64()
                    .ok_or(TraceReadError::Malformed("arg value is not a u64"))?;
                args.insert(k.clone(), v);
            }
            events.push(ParsedEvent {
                cat: str_field("cat")?,
                name: str_field("name")?,
                kind,
                label: str_field("label")?,
                args,
                ts_ns: num_field("ts_ns")?,
                dur_ns: num_field("dur_ns")?,
                tid: num_field("tid")?,
            });
        }
        Ok(ParsedTrace { events })
    }

    /// The events, in document order.
    #[must_use]
    pub fn events(&self) -> &[ParsedEvent] {
        &self.events
    }

    /// Zeroes every wall-clock-dependent field (`ts_ns`, `dur_ns`,
    /// `tid`) and re-sorts, leaving exactly the deterministic content —
    /// what the golden-snapshot test pins.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        for e in &mut self.events {
            e.ts_ns = 0;
            e.dur_ns = 0;
            e.tid = 0;
        }
        self.events.sort();
        self
    }

    /// Renders one line per event (plus a schema header) — the
    /// reviewable golden-file format.
    #[must_use]
    pub fn to_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("bsched-trace schema v{TRACE_SCHEMA_VERSION}\n");
        for e in &self.events {
            let args = e
                .args
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                s,
                "{}.{} {} label={:?} args{{{args}}}",
                e.cat, e.name, e.kind, e.label
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceId;

    fn ev(cat: &'static str, name: &'static str, label: &str, args: &[(&'static str, u64)]) -> Event {
        Event {
            id: TraceId::new(cat, name),
            kind: EventKind::Instant,
            ts_ns: 5,
            dur_ns: 0,
            tid: 3,
            label: label.to_string(),
            args: args.to_vec(),
        }
    }

    #[test]
    fn report_orders_events_deterministically() {
        let forward = TraceReport::new(vec![
            ev("sim", "run", "b", &[]),
            ev("pipeline", "pass", "dce", &[]),
            ev("sim", "run", "a", &[]),
        ]);
        let backward = TraceReport::new(vec![
            ev("sim", "run", "a", &[]),
            ev("sim", "run", "b", &[]),
            ev("pipeline", "pass", "dce", &[]),
        ]);
        assert_eq!(forward.to_json_string(), backward.to_json_string());
        assert_eq!(forward.events()[0].id.cat, "pipeline");
    }

    #[test]
    fn json_round_trips_through_the_reader() {
        let report = TraceReport::new(vec![ev(
            "sim",
            "load_site",
            "TRFD",
            &[("site", 12), ("interlock", 40)],
        )]);
        let parsed = ParsedTrace::parse(&report.to_json_string()).unwrap();
        assert_eq!(parsed.events().len(), 1);
        let e = &parsed.events()[0];
        assert_eq!((e.cat.as_str(), e.name.as_str()), ("sim", "load_site"));
        assert_eq!(e.args["site"], 12);
        assert_eq!(e.args["interlock"], 40);
        assert_eq!(e.ts_ns, 5);
        assert_eq!(e.tid, 3);
    }

    #[test]
    fn schema_mismatch_fails_loudly_not_silently() {
        let mut doc = TraceReport::new(vec![ev("sim", "run", "", &[])]).to_json_string();
        let from = format!("\"schema\":{TRACE_SCHEMA_VERSION}");
        let bumped = doc.replace(&from, &format!("\"schema\":{}", TRACE_SCHEMA_VERSION + 1));
        assert_ne!(doc, bumped, "substitution must hit");
        doc = bumped;
        let err = ParsedTrace::parse(&doc).unwrap_err();
        assert_eq!(
            err,
            TraceReadError::SchemaMismatch {
                found: u64::from(TRACE_SCHEMA_VERSION) + 1,
                expected: TRACE_SCHEMA_VERSION,
            }
        );
        assert!(err.to_string().contains("refusing to parse"), "{err}");
    }

    #[test]
    fn missing_schema_and_garbage_are_rejected() {
        assert!(matches!(
            ParsedTrace::parse("{\"events\": []}"),
            Err(TraceReadError::Malformed(_))
        ));
        assert!(matches!(
            ParsedTrace::parse("not json"),
            Err(TraceReadError::Json(_))
        ));
    }

    #[test]
    fn normalized_zeroes_wall_clock_fields() {
        let report = TraceReport::new(vec![ev("a", "b", "x", &[("v", 1)])]);
        let parsed = ParsedTrace::parse(&report.to_json_string()).unwrap().normalized();
        let e = &parsed.events()[0];
        assert_eq!((e.ts_ns, e.dur_ns, e.tid), (0, 0, 0));
        assert_eq!(e.args["v"], 1);
        let lines = parsed.to_lines();
        assert!(lines.starts_with("bsched-trace schema v"), "{lines}");
        assert!(lines.contains("a.b instant label=\"x\" args{v=1}"), "{lines}");
    }

    #[test]
    fn chrome_export_emits_trace_events() {
        let mut span = ev("pipeline", "pass", "dce", &[("before", 4)]);
        span.kind = EventKind::Span;
        span.dur_ns = 1500;
        let text = TraceReport::new(vec![span, ev("sim", "run", "", &[])]).to_chrome_json_string();
        let doc = Json::parse(&text).unwrap();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("no traceEvents: {text}");
        };
        assert_eq!(events.len(), 2);
        assert!(text.contains("\"ph\":\"X\"") && text.contains("\"ph\":\"i\""), "{text}");
        assert!(text.contains("\"dur\":1.5"), "{text}");
    }

    #[test]
    fn summary_mentions_each_section() {
        let mut cell = ev("harness", "cell", "TRFD/BS", &[]);
        cell.kind = EventKind::Span;
        let events = vec![
            ev("pipeline", "pass", "dce", &[("before", 10), ("after", 8)]),
            ev("sched", "region", "main", &[("insts", 6), ("loads", 2), ("weight_max", 3)]),
            ev(
                "sim",
                "load_site",
                "TRFD",
                &[("site", 1), ("interlock", 9), ("mshr_stall", 1), ("l1", 4)],
            ),
            cell,
            ev("verify", "violation", "region 0: bad", &[]),
        ];
        let s = TraceReport::new(events).summary();
        assert!(s.contains("bsched-trace summary"), "{s}");
        assert!(s.contains("passes"), "{s}");
        assert!(s.contains("scheduler: 1 regions"), "{s}");
        assert!(s.contains("10 load-interlock cycles attributed"), "{s}");
        assert!(s.contains("cells traced: 1 spans"), "{s}");
        assert!(s.contains("violations traced: 1"), "{s}");
    }
}
