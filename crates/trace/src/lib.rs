//! Structured tracing and metrics for the balanced-scheduling stack.
//!
//! The paper's numbers are explained by *why* a schedule stalls — which
//! loads interlocked, for how many cycles, at which memory level; how
//! each pass grew the IR; where the harness spent its wall time. This
//! crate records those facts as typed events without perturbing the
//! measurement:
//!
//! * **Off by default, no-op when off.** Instrumentation points guard on
//!   a single relaxed atomic load ([`enabled`]); with tracing disabled
//!   no clock is read, no label is formatted, and no allocation happens,
//!   so the scheduler, optimizer, and simulator hot paths keep their
//!   current speed (CI enforces this with a microbench ratio check).
//! * **Lock-free-enough recording.** Each thread appends to a
//!   thread-local buffer; buffers flush to a global collector when they
//!   fill, when [`flush_thread`] is called, or when the thread exits.
//!   Workers never contend on the hot path.
//! * **Deterministic exports.** [`TraceReport`] sorts events by their
//!   static identity, label, and payload — never by wall-clock alone —
//!   so two runs of the same deterministic workload export the same
//!   event sequence (timestamps aside). [`ParsedTrace::normalized`]
//!   zeroes the non-deterministic fields for golden comparisons.
//! * **Versioned schema.** The JSON export carries
//!   [`TRACE_SCHEMA_VERSION`], and [`ParsedTrace::parse`] refuses any
//!   other version loudly rather than misreading fields — the same
//!   policy as the harness result cache.
//!
//! # Recording
//!
//! ```
//! use bsched_trace as trace;
//!
//! let (sum, events) = trace::capture(|| {
//!     let span = trace::span(trace::points::HARNESS_CELL).label_with(|| "demo".into());
//!     let sum: u64 = (1..=3).sum();
//!     span.finish(&[("sum", sum)]);
//!     sum
//! });
//! assert_eq!(sum, 6);
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].arg("sum"), Some(6));
//! ```
//!
//! # Exporting
//!
//! ```
//! use bsched_trace::{ParsedTrace, TraceReport};
//! # let (_, events) = bsched_trace::capture(|| {
//! #     bsched_trace::instant(bsched_trace::points::SIM_RUN, "k", &[("cycles", 7)]);
//! # });
//! let report = TraceReport::new(events);
//! let parsed = ParsedTrace::parse(&report.to_json_string()).unwrap();
//! assert_eq!(parsed.events().len(), 1);
//! ```

mod event;
mod recorder;
mod report;

pub use event::{points, Event, EventKind, TraceId};
pub use recorder::{
    capture, clear, drain, enable_scope, enabled, flush_thread, instant, set_enabled, span,
    EnableGuard, Span,
};
pub use report::{ParsedTrace, TraceReadError, TraceReport, TRACE_SCHEMA_VERSION};
