//! Property tests for the memory hierarchy.

use bsched_mem::{Cache, CacheConfig, Hierarchy, MemConfig, Tlb};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn access_timing_is_sane(addrs in prop::collection::vec(0u64..(1 << 22), 1..200)) {
        let mut h = Hierarchy::new(MemConfig::alpha21164());
        let mut now = 0u64;
        for &a in &addrs {
            let acc = h.data_read(a & !7, now);
            prop_assert!(acc.issue_at >= now, "no time travel");
            prop_assert!(acc.ready_at >= acc.issue_at + 2, "at least the hit latency");
            prop_assert!(acc.ready_at <= acc.issue_at + 50, "at most the memory latency");
            now = acc.issue_at + 1;
        }
    }

    #[test]
    fn second_touch_is_at_least_as_fast(addrs in prop::collection::vec(0u64..(1 << 20), 1..64)) {
        let mut h = Hierarchy::new(MemConfig::alpha21164());
        let mut now = 0;
        for &a in &addrs {
            let first = h.data_read(a & !7, now);
            now = first.ready_at + 1;
            let again = h.data_read(a & !7, now);
            prop_assert!(
                again.ready_at - again.issue_at <= first.ready_at - first.issue_at,
                "a just-touched line cannot get slower"
            );
            now = again.ready_at + 1;
        }
    }

    #[test]
    fn hierarchy_is_deterministic(addrs in prop::collection::vec(0u64..(1 << 21), 1..128)) {
        let run = || {
            let mut h = Hierarchy::new(MemConfig::alpha21164());
            let mut now = 0;
            let mut log = Vec::new();
            for &a in &addrs {
                let acc = h.data_read(a & !7, now);
                log.push((acc.issue_at, acc.ready_at, acc.level));
                now = acc.issue_at + 1;
            }
            log
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn cache_respects_its_capacity(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        // A cache never holds more distinct lines than size/line.
        let cfg = CacheConfig { size: 1024, line: 32, assoc: 2, latency: 2 };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        let lines_capacity = (cfg.size / cfg.line) as usize;
        let resident = (0u64..(1 << 16) / 32)
            .filter(|&l| c.contains(l * 32))
            .count();
        prop_assert!(resident <= lines_capacity);
    }

    #[test]
    fn working_set_within_assoc_always_hits(base in 0u64..(1 << 12)) {
        // Two lines in the same set of a 2-way cache never evict each other.
        let cfg = CacheConfig { size: 1024, line: 32, assoc: 2, latency: 2 };
        let mut c = Cache::new(cfg);
        let sets = cfg.sets();
        let a = base * 32;
        let b = a + sets * 32; // same set, different tag
        c.access(a);
        c.access(b);
        for _ in 0..16 {
            prop_assert!(c.access(a));
            prop_assert!(c.access(b));
        }
    }

    #[test]
    fn tlb_capacity_bound(pages in prop::collection::vec(0u64..64, 1..200)) {
        let mut t = Tlb::new(8, 4096);
        for &p in &pages {
            t.access(p * 4096);
        }
        // Re-touch the last 8 distinct pages in reverse order: all present.
        let mut distinct = Vec::new();
        for &p in pages.iter().rev() {
            if !distinct.contains(&p) {
                distinct.push(p);
            }
            if distinct.len() == 8 {
                break;
            }
        }
        // The most recently used page must still be resident.
        if let Some(&last) = pages.last() {
            prop_assert!(t.access(last * 4096), "MRU page evicted");
        }
    }
}
