//! Randomized property tests for the memory hierarchy, driven by the
//! workspace's seeded [`Prng`] for reproducibility.

use bsched_mem::{Cache, CacheConfig, Hierarchy, MemConfig, Tlb};
use bsched_util::Prng;

fn gen_addrs(rng: &mut Prng, bound: u64, min: usize, max: usize) -> Vec<u64> {
    let n = min + rng.index(max - min);
    (0..n).map(|_| rng.range_u64(0, bound)).collect()
}

#[test]
fn access_timing_is_sane() {
    let mut rng = Prng::new(0x3E3_0001);
    for case in 0..64 {
        let addrs = gen_addrs(&mut rng, 1 << 22, 1, 200);
        let mut h = Hierarchy::new(MemConfig::alpha21164());
        let mut now = 0u64;
        for &a in &addrs {
            let acc = h.data_read(a & !7, now);
            assert!(acc.issue_at >= now, "case {case}: no time travel");
            assert!(
                acc.ready_at >= acc.issue_at + 2,
                "case {case}: at least the hit latency"
            );
            assert!(
                acc.ready_at <= acc.issue_at + 50,
                "case {case}: at most the memory latency"
            );
            now = acc.issue_at + 1;
        }
    }
}

#[test]
fn second_touch_is_at_least_as_fast() {
    let mut rng = Prng::new(0x3E3_0002);
    for case in 0..64 {
        let addrs = gen_addrs(&mut rng, 1 << 20, 1, 64);
        let mut h = Hierarchy::new(MemConfig::alpha21164());
        let mut now = 0;
        for &a in &addrs {
            let first = h.data_read(a & !7, now);
            now = first.ready_at + 1;
            let again = h.data_read(a & !7, now);
            assert!(
                again.ready_at - again.issue_at <= first.ready_at - first.issue_at,
                "case {case}: a just-touched line cannot get slower"
            );
            now = again.ready_at + 1;
        }
    }
}

#[test]
fn hierarchy_is_deterministic() {
    let mut rng = Prng::new(0x3E3_0003);
    for case in 0..64 {
        let addrs = gen_addrs(&mut rng, 1 << 21, 1, 128);
        let run = || {
            let mut h = Hierarchy::new(MemConfig::alpha21164());
            let mut now = 0;
            let mut log = Vec::new();
            for &a in &addrs {
                let acc = h.data_read(a & !7, now);
                log.push((acc.issue_at, acc.ready_at, acc.level));
                now = acc.issue_at + 1;
            }
            log
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

#[test]
fn cache_respects_its_capacity() {
    let mut rng = Prng::new(0x3E3_0004);
    for case in 0..64 {
        let addrs = gen_addrs(&mut rng, 1 << 16, 1, 300);
        // A cache never holds more distinct lines than size/line.
        let cfg = CacheConfig {
            size: 1024,
            line: 32,
            assoc: 2,
            latency: 2,
        };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        let lines_capacity = (cfg.size / cfg.line) as usize;
        let resident = (0u64..(1 << 16) / 32)
            .filter(|&l| c.contains(l * 32))
            .count();
        assert!(resident <= lines_capacity, "case {case}");
    }
}

#[test]
fn working_set_within_assoc_always_hits() {
    let mut rng = Prng::new(0x3E3_0005);
    for case in 0..64 {
        let base = rng.range_u64(0, 1 << 12);
        // Two lines in the same set of a 2-way cache never evict each other.
        let cfg = CacheConfig {
            size: 1024,
            line: 32,
            assoc: 2,
            latency: 2,
        };
        let mut c = Cache::new(cfg);
        let sets = cfg.sets();
        let a = base * 32;
        let b = a + sets * 32; // same set, different tag
        c.access(a);
        c.access(b);
        for _ in 0..16 {
            assert!(c.access(a), "case {case}");
            assert!(c.access(b), "case {case}");
        }
    }
}

#[test]
fn tlb_capacity_bound() {
    let mut rng = Prng::new(0x3E3_0006);
    for case in 0..64 {
        let n = 1 + rng.index(199);
        let pages: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 64)).collect();
        let mut t = Tlb::new(8, 4096);
        for &p in &pages {
            t.access(p * 4096);
        }
        // The most recently used page must still be resident.
        if let Some(&last) = pages.last() {
            assert!(t.access(last * 4096), "case {case}: MRU page evicted");
        }
    }
}
