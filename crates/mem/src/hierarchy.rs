//! The full memory hierarchy: L1D (lockup-free) → L2 → L3 → memory, plus
//! I-cache and TLBs.

use crate::cache::Cache;
use crate::config::{MemConfig, MshrPolicy, PrefetchKind};
use crate::stats::MemStats;
use crate::tlb::Tlb;

/// Which level satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// First-level cache hit.
    L1,
    /// Second-level cache hit.
    L2,
    /// Board-cache hit.
    L3,
    /// Main memory.
    Memory,
}

impl Level {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::L3 => "L3",
            Level::Memory => "mem",
        }
    }
}

/// Timing answer for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycle the access could actually begin (`> now` only when the
    /// lockup-free cache ran out of MSHRs and the pipeline had to stall).
    pub issue_at: u64,
    /// Cycle the result is available to consumers.
    pub ready_at: u64,
    /// Level that served the data.
    pub level: Level,
}

#[derive(Debug, Clone, Copy)]
struct MshrEntry {
    line: u64,
    fill_at: u64,
    level: Level,
    /// The entry was allocated by the prefetcher, not a demand miss.
    prefetch: bool,
}

/// The demand-miss stride tracker feeding the L1D prefetcher.
#[derive(Debug, Clone, Copy, Default)]
struct StrideTracker {
    last_line: u64,
    last_delta: i64,
    /// 0 = cold, 1 = one miss seen, 2 = a delta established.
    seen: u8,
}

impl StrideTracker {
    /// Observes a demand-miss line and predicts the next line's delta
    /// when two consecutive misses repeat the same non-zero stride.
    fn observe(&mut self, line: u64) -> Option<i64> {
        let mut predicted = None;
        if self.seen >= 1 {
            let delta = line.wrapping_sub(self.last_line) as i64;
            if self.seen == 2 && delta == self.last_delta && delta != 0 {
                predicted = Some(delta);
            }
            self.last_delta = delta;
            self.seen = 2;
        } else {
            self.seen = 1;
        }
        self.last_line = line;
        predicted
    }
}

/// The memory hierarchy state machine.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: MemConfig,
    l1d: Cache,
    icache: Cache,
    l2: Cache,
    l3: Option<Cache>,
    dtb: Tlb,
    itb: Tlb,
    mshrs: Vec<MshrEntry>,
    stride: StrideTracker,
    /// Drain-completion times of buffered stores (finite write buffer).
    write_buffer: Vec<u64>,
    stats: MemStats,
}

impl Hierarchy {
    /// Builds a cold hierarchy.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        Hierarchy {
            l1d: Cache::new(config.l1d),
            icache: Cache::new(config.icache),
            l2: Cache::new(config.l2),
            l3: config.l3.map(Cache::new),
            dtb: Tlb::new(config.dtb_entries, config.page_size),
            itb: Tlb::new(config.itb_entries, config.page_size),
            mshrs: Vec::with_capacity(config.mshrs),
            stride: StrideTracker::default(),
            write_buffer: Vec::new(),
            stats: MemStats::default(),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Statistics gathered so far.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Walks the lower levels (L2 → L3 → memory) for a line fill and
    /// returns the total load-use latency.
    fn lower_levels(&mut self, addr: u64) -> (u32, Level) {
        if self.l2.access(addr) {
            return (self.config.l2.latency, Level::L2);
        }
        if let Some(l3) = &mut self.l3 {
            if l3.access(addr) {
                return (
                    self.config.l3.expect("l3 cache has config").latency,
                    Level::L3,
                );
            }
        }
        (self.config.mem_latency, Level::Memory)
    }

    /// A data read of the 8 bytes at `addr`, issued at cycle `now`.
    pub fn data_read(&mut self, addr: u64, now: u64) -> Access {
        let mut issue_at = now;
        if !self.dtb.access(addr) {
            self.stats.dtb_misses += 1;
            issue_at += u64::from(self.config.tlb_miss_penalty);
        }
        let line = addr / self.config.l1d.line;
        self.mshrs.retain(|e| e.fill_at > issue_at);
        // A blocking cache serialises: any read issued under an
        // outstanding miss waits for every outstanding fill.
        if self.config.mshr_policy == MshrPolicy::Blocking && !self.mshrs.is_empty() {
            let free_at = self
                .mshrs
                .iter()
                .map(|e| e.fill_at)
                .max()
                .expect("mshrs non-empty");
            self.stats.mshr_stall_cycles += free_at - issue_at;
            issue_at = free_at;
            self.mshrs.clear();
        }
        // A line whose fill is still in flight: the L1 tag matches (it
        // was allocated at miss time) but the data arrives only at fill
        // time. Under `Merge` the read joins the entry; under `NoMerge`
        // it stalls until the fill lands and then reads L1.
        if let Some(e) = self.mshrs.iter_mut().find(|e| e.line == line) {
            let (fill_at, level, was_prefetch) = (e.fill_at, e.level, e.prefetch);
            // A prefetch earns its keep at most once, however many
            // demand reads merge into its in-flight fill.
            e.prefetch = false;
            if was_prefetch {
                self.stats.prefetch_useful += 1;
            }
            if self.config.mshr_policy == MshrPolicy::Merge {
                self.stats.mshr_merges += 1;
                self.l1d.access(addr); // touch for LRU
                let ready_at = fill_at.max(issue_at + u64::from(self.config.l1d.latency));
                return Access {
                    issue_at,
                    ready_at,
                    level,
                };
            }
            // NoMerge: structural stall until the outstanding fill
            // frees the line, then fall through to the L1 lookup.
            self.stats.mshr_stall_cycles += fill_at - issue_at;
            issue_at = fill_at;
            self.mshrs.retain(|e| e.fill_at > issue_at);
        }
        if self.l1d.access(addr) {
            self.stats.record_read(Level::L1);
            return Access {
                issue_at,
                ready_at: issue_at + u64::from(self.config.l1d.latency),
                level: Level::L1,
            };
        }
        // L1 miss: lockup-free path through the miss-address file.
        if self.mshrs.len() >= self.config.mshrs {
            // Structural stall: wait for the earliest fill.
            let free_at = self
                .mshrs
                .iter()
                .map(|e| e.fill_at)
                .min()
                .expect("mshrs non-empty");
            self.stats.mshr_stall_cycles += free_at - issue_at;
            issue_at = free_at;
            self.mshrs.retain(|e| e.fill_at > issue_at);
        }
        let (latency, level) = self.lower_levels(addr);
        self.stats.record_read(level);
        let ready_at = issue_at + u64::from(latency);
        self.mshrs.push(MshrEntry {
            line,
            fill_at: ready_at,
            level,
            prefetch: false,
        });
        self.maybe_prefetch(addr, line, issue_at);
        Access {
            issue_at,
            ready_at,
            level,
        }
    }

    /// The demand-miss hook of the L1D prefetcher: predicts the next
    /// line and, when the prediction is safe and free, fills it.
    ///
    /// A prefetch never perturbs demand behaviour beyond its fill: it
    /// stays within the missing page (no TLB traffic), uses only spare
    /// MSHR capacity, and is skipped when the line is already resident
    /// or already in flight.
    fn maybe_prefetch(&mut self, addr: u64, line: u64, issue_at: u64) {
        let delta = match self.config.prefetch {
            PrefetchKind::None => return,
            PrefetchKind::NextLine => 1,
            PrefetchKind::Stride => match self.stride.observe(line) {
                Some(d) => d,
                None => return,
            },
        };
        let pf_line = line.wrapping_add(delta as u64);
        let pf_addr = pf_line.wrapping_mul(self.config.l1d.line);
        if pf_addr / self.config.page_size != addr / self.config.page_size {
            return;
        }
        if self.mshrs.len() >= self.config.mshrs
            || self.mshrs.iter().any(|e| e.line == pf_line)
            || self.l1d.contains(pf_addr)
        {
            return;
        }
        let (latency, level) = self.lower_levels(pf_addr);
        self.l1d.access(pf_addr); // allocate, exactly like a demand miss
        self.stats.prefetches += 1;
        self.mshrs.push(MshrEntry {
            line: pf_line,
            fill_at: issue_at + u64::from(latency),
            level,
            prefetch: true,
        });
    }

    /// A data write of the 8 bytes at `addr` (write-through,
    /// no-write-allocate; stores never stall the pipeline — the 21164's
    /// write buffer absorbs them).
    pub fn data_write(&mut self, addr: u64, now: u64) -> Access {
        self.stats.stores += 1;
        let mut issue_at = now;
        if !self.dtb.access(addr) {
            self.stats.dtb_misses += 1;
            issue_at += u64::from(self.config.tlb_miss_penalty);
        }
        // Finite write buffer: a full buffer stalls the store until the
        // oldest entry drains.
        if let Some(capacity) = self.config.write_buffer {
            self.write_buffer.retain(|&d| d > issue_at);
            if self.write_buffer.len() >= capacity as usize {
                let free_at = *self
                    .write_buffer
                    .iter()
                    .min()
                    .expect("write buffer non-empty");
                self.stats.wb_stall_cycles += free_at - issue_at;
                issue_at = free_at;
                self.write_buffer.retain(|&d| d > issue_at);
            }
            // The write-through channel drains one store at a time.
            let start = self.write_buffer.iter().max().copied().unwrap_or(issue_at);
            self.write_buffer
                .push(start.max(issue_at) + u64::from(self.config.write_drain_cycles));
        }
        let hit = self.l1d.probe_update(addr);
        self.l2.probe_update(addr);
        if let Some(l3) = &mut self.l3 {
            l3.probe_update(addr);
        }
        let level = if hit { Level::L1 } else { Level::Memory };
        Access {
            issue_at,
            ready_at: issue_at + 1,
            level,
        }
    }

    /// An instruction fetch at code address `addr` (blocking).
    pub fn inst_fetch(&mut self, addr: u64, now: u64) -> Access {
        let mut issue_at = now;
        if !self.itb.access(addr) {
            self.stats.itb_misses += 1;
            issue_at += u64::from(self.config.tlb_miss_penalty);
        }
        if self.icache.access(addr) {
            // Fetch overlaps the pipeline; a hit costs nothing extra.
            return Access {
                issue_at,
                ready_at: issue_at,
                level: Level::L1,
            };
        }
        self.stats.icache_misses += 1;
        let (latency, level) = self.lower_levels(addr);
        Access {
            issue_at,
            ready_at: issue_at + u64::from(latency),
            level,
        }
    }

    /// Number of MSHR entries outstanding at cycle `now`.
    #[must_use]
    pub fn outstanding_misses(&self, now: u64) -> usize {
        self.mshrs.iter().filter(|e| e.fill_at > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(MemConfig::alpha21164())
    }

    #[test]
    fn cold_miss_then_hit_latencies() {
        let mut h = small();
        let a = h.data_read(0x10000, 0);
        assert_eq!(a.level, Level::Memory);
        assert_eq!(a.ready_at, (50 + a.issue_at));
        let b = h.data_read(0x10000, a.ready_at);
        assert_eq!(b.level, Level::L1);
        assert_eq!(b.ready_at - b.issue_at, 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = small();
        let addr = 0x4000;
        let first = h.data_read(addr, 0);
        assert_eq!(first.level, Level::Memory);
        // Evict from L1 (8 KB direct-mapped: +8 KB conflicts), keep in L2.
        let _ = h.data_read(addr + 8 * 1024, 100);
        let again = h.data_read(addr, 300);
        assert_eq!(again.level, Level::L2);
        assert_eq!(again.ready_at - again.issue_at, 8);
    }

    #[test]
    fn mshr_merge_same_line() {
        let mut h = small();
        let a = h.data_read(0x8000, 0);
        let b = h.data_read(0x8008, 1); // same 32-byte line, outstanding
        assert_eq!(h.stats().mshr_merges, 1);
        assert_eq!(
            b.ready_at, a.ready_at,
            "merged access waits for the same fill"
        );
        assert_eq!(b.issue_at, 1, "merge does not stall");
        assert_eq!(b.level, a.level);
    }

    #[test]
    fn mshr_structural_stall_when_full() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_mshrs(2));
        // Three distinct-line misses back-to-back.
        let _a = h.data_read(0x0000_0000, 0);
        let b = h.data_read(0x0000_1000, 1);
        let c = h.data_read(0x0000_2000, 2);
        // The third miss waits until the earliest outstanding fill frees
        // its MSHR.
        assert_eq!(c.issue_at, b.ready_at.min(_a.ready_at));
        assert!(h.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn blocking_cache_with_one_mshr() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_mshrs(1));
        let a = h.data_read(0x0000, 0);
        let b = h.data_read(0x4000_0000, 1);
        assert_eq!(
            b.issue_at, a.ready_at,
            "one MSHR means fully serialised misses"
        );
    }

    #[test]
    fn tlb_miss_penalty_applies() {
        let mut h = small();
        let a = h.data_read(0, 0);
        assert_eq!(a.issue_at, u64::from(h.config().tlb_miss_penalty));
        let b = h.data_read(8, a.ready_at);
        assert_eq!(b.issue_at, a.ready_at, "same page: no second penalty");
        assert_eq!(h.stats().dtb_misses, 1);
    }

    #[test]
    fn icache_behaviour() {
        let mut h = small();
        let a = h.inst_fetch(0x100, 5);
        assert!(a.ready_at > 5, "cold I-fetch misses");
        let b = h.inst_fetch(0x104, a.ready_at);
        assert_eq!(b.ready_at, b.issue_at, "same line hits for free");
        assert_eq!(h.stats().icache_misses, 1);
    }

    #[test]
    fn writes_never_stall_and_stay_write_through() {
        let mut h = small();
        let w = h.data_write(0x9000, 40); // TLB cold
        assert_eq!(w.ready_at, w.issue_at + 1);
        // No allocation on write miss: a subsequent read still misses L1.
        let r = h.data_read(0x9000, 100);
        assert_ne!(r.level, Level::L1);
        assert_eq!(h.stats().stores, 1);
    }

    #[test]
    fn outstanding_count_tracks_time() {
        let mut h = small();
        let a = h.data_read(0x0, 0);
        assert_eq!(h.outstanding_misses(a.issue_at), 1);
        assert_eq!(h.outstanding_misses(a.ready_at + 1), 0);
    }
}

#[cfg(test)]
mod prefetch_and_policy_tests {
    use super::*;

    #[test]
    fn nextline_prefetch_covers_sequential_misses() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_prefetch(PrefetchKind::NextLine));
        // Warm the TLB page, then a cold miss to a fresh line.
        let _ = h.data_read(0x10_0000, 0);
        let a = h.data_read(0x10_1000, 1000);
        assert_ne!(a.level, Level::L1);
        assert!(h.stats().prefetches >= 1, "miss must trigger a prefetch");
        // The next line is in flight: a prompt demand read merges with
        // the prefetch instead of missing all the way to memory.
        let b = h.data_read(0x10_1000 + 32, a.issue_at + 1);
        assert_eq!(h.stats().prefetch_useful, 1, "{:?}", h.stats());
        assert!(
            b.ready_at < a.issue_at + 1 + u64::from(h.config().mem_latency),
            "covered miss must beat a full memory round trip"
        );
        // After the fill lands, the line is simply resident.
        let c = h.data_read(0x10_1000 + 40, b.ready_at + 100);
        assert_eq!(c.level, Level::L1);
    }

    #[test]
    fn prefetch_counts_useful_at_most_once() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_prefetch(PrefetchKind::NextLine));
        let _ = h.data_read(0x10_0000, 0);
        let a = h.data_read(0x10_1000, 1000); // prefetches the next line
        assert!(h.stats().prefetches >= 1, "{:?}", h.stats());
        // Two demand reads merge into the same in-flight prefetch: the
        // prefetch covered one miss, so it was useful once, not twice.
        let _ = h.data_read(0x10_1000 + 32, a.issue_at + 1);
        let _ = h.data_read(0x10_1000 + 40, a.issue_at + 2);
        assert_eq!(h.stats().prefetch_useful, 1, "{:?}", h.stats());
    }

    #[test]
    fn stride_prefetch_needs_a_repeated_delta() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_prefetch(PrefetchKind::Stride));
        let _ = h.data_read(0x10_0000, 0); // warm page; first miss
        let _ = h.data_read(0x10_0040, 100); // delta established (2 lines)
        assert_eq!(h.stats().prefetches, 0, "no prediction yet");
        let _ = h.data_read(0x10_0080, 200); // delta repeats -> prefetch 0x10_00C0
        assert_eq!(h.stats().prefetches, 1, "{:?}", h.stats());
        let d = h.data_read(0x10_00C0, 201);
        assert_eq!(h.stats().prefetch_useful, 1);
        assert!(d.ready_at <= 201 + u64::from(h.config().mem_latency));
    }

    #[test]
    fn prefetch_stays_inside_the_page_and_spare_capacity() {
        let cfg = MemConfig::alpha21164()
            .with_prefetch(PrefetchKind::NextLine)
            .with_mshrs(1);
        let mut h = Hierarchy::new(cfg);
        let _ = h.data_read(0x10_0000, 0);
        assert_eq!(
            h.stats().prefetches,
            0,
            "a full miss-address file leaves no room for prefetches"
        );
        // Last line of a page: the next line crosses, so no prefetch.
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_prefetch(PrefetchKind::NextLine));
        let last_line = 0x10_0000 + 8 * 1024 - 32;
        let _ = h.data_read(last_line, 0);
        assert_eq!(h.stats().prefetches, 0, "prefetches never cross a page");
    }

    #[test]
    fn nomerge_stalls_secondary_misses_until_the_fill() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_mshr_policy(MshrPolicy::NoMerge));
        let a = h.data_read(0x8000, 0);
        let b = h.data_read(0x8008, a.issue_at + 1); // same line, in flight
        assert_eq!(h.stats().mshr_merges, 0, "no merging under NoMerge");
        assert_eq!(b.issue_at, a.ready_at, "stalls until the fill lands");
        assert_eq!(b.level, Level::L1, "then reads the just-filled line");
        assert!(h.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn blocking_policy_serialises_all_misses() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_mshr_policy(MshrPolicy::Blocking));
        let a = h.data_read(0x0000_0000, 0);
        // Different line (and a different L1 set, so nothing is
        // evicted), plenty of MSHRs — still waits for the fill.
        let b = h.data_read(0x0000_1000, a.issue_at + 1);
        assert_eq!(b.issue_at, a.ready_at, "blocking cache: no overlap");
        assert!(h.stats().mshr_stall_cycles > 0);
        // And even a would-be L1 hit waits while a miss is outstanding.
        let c = h.data_read(0x0000_0000, b.issue_at + 1);
        assert_eq!(c.issue_at, b.ready_at);
        assert_eq!(c.level, Level::L1);
    }

    #[test]
    fn default_machine_has_no_new_axis_traffic() {
        // The paper's machine must be byte-identical to before the axes
        // existed: no prefetches, merging semantics.
        let mut h = Hierarchy::new(MemConfig::alpha21164());
        for k in 0..64 {
            let _ = h.data_read(0x10_0000 + k * 32, k * 200);
        }
        assert_eq!(h.stats().prefetches, 0);
        assert_eq!(h.stats().prefetch_useful, 0);
    }
}

#[cfg(test)]
mod write_buffer_tests {
    use super::*;

    #[test]
    fn store_bursts_stall_on_a_finite_buffer() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_write_buffer(2));
        // Warm the TLB page first.
        let _ = h.data_write(0x1000, 0);
        let mut now = 100;
        let mut stalled = false;
        for k in 0..8 {
            let a = h.data_write(0x1000 + k * 8, now);
            if a.issue_at > now {
                stalled = true;
            }
            now = a.issue_at + 1;
        }
        assert!(stalled, "a burst of 8 stores must fill a 2-entry buffer");
        assert!(h.stats().wb_stall_cycles > 0);
    }

    #[test]
    fn infinite_buffer_never_stalls() {
        let mut h = Hierarchy::new(MemConfig::alpha21164());
        let _ = h.data_write(0x1000, 0);
        for (now, k) in (100..).zip(0..32) {
            let a = h.data_write(0x1000 + k * 8, now);
            assert_eq!(a.issue_at, now);
        }
        assert_eq!(h.stats().wb_stall_cycles, 0);
    }

    #[test]
    fn spaced_stores_do_not_stall() {
        let mut h = Hierarchy::new(MemConfig::alpha21164().with_write_buffer(2));
        let _ = h.data_write(0x1000, 0);
        let mut now = 100;
        for k in 0..8 {
            let a = h.data_write(0x1000 + k * 8, now);
            assert_eq!(a.issue_at, now, "a drained buffer never stalls");
            now = a.issue_at + 10; // far apart
        }
    }
}
