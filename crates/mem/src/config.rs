//! Memory-system configuration (the paper's Table 2, plus the machine
//! zoo's prefetch and MSHR-policy axes).

use std::fmt;
use std::str::FromStr;

/// Hardware L1 data prefetcher (demand-miss triggered).
///
/// Prefetches are issued only on true L1D read misses, only within the
/// missing page, and only into *free* MSHR capacity — they never stall
/// or displace a demand miss. A prefetch fills the L1 line and occupies
/// an MSHR entry until its fill lands, so demand reads that arrive
/// while it is in flight merge with it exactly like secondary demand
/// misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchKind {
    /// No prefetching (the paper's machine).
    #[default]
    None,
    /// Fetch line `n + 1` on a demand miss to line `n`.
    NextLine,
    /// Fetch line `n + d` when two consecutive demand misses repeat the
    /// same non-zero line stride `d`.
    Stride,
}

impl PrefetchKind {
    /// Short stable name, used by machine specs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PrefetchKind::None => "none",
            PrefetchKind::NextLine => "nextline",
            PrefetchKind::Stride => "stride",
        }
    }

    /// The valid spellings, for error messages.
    #[must_use]
    pub fn valid_choices() -> &'static str {
        "none, nextline, stride"
    }
}

impl fmt::Display for PrefetchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for PrefetchKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" | "off" => Ok(PrefetchKind::None),
            "nextline" | "next-line" => Ok(PrefetchKind::NextLine),
            "stride" => Ok(PrefetchKind::Stride),
            other => Err(bsched_util::spec::unknown(
                "prefetcher",
                other,
                &format!("valid prefetchers: {}", PrefetchKind::valid_choices()),
            )),
        }
    }
}

/// What the L1D miss-address file does with a read whose line already
/// has an outstanding miss, and whether misses overlap at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MshrPolicy {
    /// Lockup-free with merging (the paper's machine): secondary misses
    /// join the outstanding entry and wait for its fill.
    #[default]
    Merge,
    /// Lockup-free without merging: a secondary miss stalls the
    /// pipeline until the outstanding fill lands, then reads the
    /// just-filled line from L1.
    NoMerge,
    /// A blocking cache: any read issued while *any* miss is
    /// outstanding stalls until every outstanding fill lands
    /// (independent of `mshrs`, which only matters for overlap).
    Blocking,
}

impl MshrPolicy {
    /// Short stable name, used by machine specs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MshrPolicy::Merge => "merge",
            MshrPolicy::NoMerge => "nomerge",
            MshrPolicy::Blocking => "blocking",
        }
    }

    /// The valid spellings, for error messages.
    #[must_use]
    pub fn valid_choices() -> &'static str {
        "merge, nomerge, blocking"
    }
}

impl fmt::Display for MshrPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for MshrPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "merge" => Ok(MshrPolicy::Merge),
            "nomerge" | "no-merge" => Ok(MshrPolicy::NoMerge),
            "blocking" => Ok(MshrPolicy::Blocking),
            other => Err(bsched_util::spec::unknown(
                "MSHR policy",
                other,
                &format!("valid MSHR policies: {}", MshrPolicy::valid_choices()),
            )),
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Total load-use latency in cycles when a load is satisfied at this
    /// level.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count.
    #[must_use]
    pub fn sets(&self) -> u64 {
        let sets = self.size / (self.line * u64::from(self.assoc));
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// First-level data cache (lockup-free).
    pub l1d: CacheConfig,
    /// First-level instruction cache.
    pub icache: CacheConfig,
    /// Second-level unified on-chip cache.
    pub l2: CacheConfig,
    /// Third-level off-chip (board) cache; `None` disables the level.
    pub l3: Option<CacheConfig>,
    /// Main-memory total load-use latency in cycles.
    pub mem_latency: u32,
    /// Miss-address-file entries (outstanding load misses the lockup-free
    /// L1 supports). `1` degenerates to a blocking cache — the ablation
    /// the `mshr_sweep` bench runs.
    pub mshrs: usize,
    /// Data TLB entries (fully associative).
    pub dtb_entries: usize,
    /// Instruction TLB entries (fully associative).
    pub itb_entries: usize,
    /// Page size in bytes.
    pub page_size: u64,
    /// Extra cycles charged on a TLB miss (software PAL-code refill).
    pub tlb_miss_penalty: u32,
    /// Write-buffer entries between the pipeline and the write-through
    /// path. `None` models an infinite buffer (stores never stall — the
    /// default, matching the paper's store-latency-1 accounting);
    /// `Some(n)` stalls stores when `n` writes are already draining.
    pub write_buffer: Option<u32>,
    /// Cycles the write-through channel needs per buffered store.
    pub write_drain_cycles: u32,
    /// Hardware L1D prefetcher ([`PrefetchKind::None`] is the paper's
    /// machine).
    pub prefetch: PrefetchKind,
    /// Secondary-miss handling in the L1D miss-address file
    /// ([`MshrPolicy::Merge`] is the paper's machine).
    pub mshr_policy: MshrPolicy,
}

impl MemConfig {
    /// The Alpha 21164-like configuration the paper simulates: 8 KB
    /// direct-mapped L1 data and instruction caches with 32-byte lines and
    /// a 2-cycle hit; 96 KB 3-way second-level cache at 8 cycles; 2 MB
    /// direct-mapped board cache at 20 cycles; 50-cycle memory; 6 MSHRs;
    /// 64-entry fully associative TLBs with 8 KB pages.
    #[must_use]
    pub fn alpha21164() -> Self {
        MemConfig {
            l1d: CacheConfig {
                size: 8 * 1024,
                line: 32,
                assoc: 1,
                latency: 2,
            },
            icache: CacheConfig {
                size: 8 * 1024,
                line: 32,
                assoc: 1,
                latency: 2,
            },
            l2: CacheConfig {
                size: 96 * 1024,
                line: 64,
                assoc: 3,
                latency: 8,
            },
            l3: Some(CacheConfig {
                size: 2 * 1024 * 1024,
                line: 64,
                assoc: 1,
                latency: 20,
            }),
            mem_latency: 50,
            mshrs: 6,
            dtb_entries: 64,
            itb_entries: 48,
            page_size: 8 * 1024,
            tlb_miss_penalty: 30,
            write_buffer: None,
            write_drain_cycles: 2,
            prefetch: PrefetchKind::None,
            mshr_policy: MshrPolicy::Merge,
        }
    }

    /// Returns the configuration with a finite `n`-entry write buffer
    /// (the 21164 has six; the ablation benches sweep it).
    #[must_use]
    pub fn with_write_buffer(mut self, n: u32) -> Self {
        self.write_buffer = Some(n.max(1));
        self
    }

    /// A configuration with `n` MSHRs (for the blocking-vs-non-blocking
    /// ablation).
    #[must_use]
    pub fn with_mshrs(mut self, n: usize) -> Self {
        self.mshrs = n.max(1);
        self
    }

    /// A configuration with the given L1D prefetcher.
    #[must_use]
    pub fn with_prefetch(mut self, kind: PrefetchKind) -> Self {
        self.prefetch = kind;
        self
    }

    /// A configuration with the given MSHR secondary-miss policy.
    #[must_use]
    pub fn with_mshr_policy(mut self, policy: MshrPolicy) -> Self {
        self.mshr_policy = policy;
        self
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::alpha21164()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_config_geometry() {
        let c = MemConfig::alpha21164();
        assert_eq!(c.l1d.sets(), 256);
        assert_eq!(c.icache.sets(), 256);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.unwrap().sets(), 32 * 1024);
        assert_eq!(c.mshrs, 6);
    }

    #[test]
    fn latencies_span_2_to_50() {
        let c = MemConfig::alpha21164();
        assert_eq!(c.l1d.latency, 2);
        assert_eq!(c.mem_latency, 50);
        assert!(c.l2.latency > c.l1d.latency);
        assert!(c.l3.unwrap().latency > c.l2.latency);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let c = CacheConfig {
            size: 96 * 1024,
            line: 64,
            assoc: 1,
            latency: 8,
        };
        let _ = c.sets();
    }
}
