//! `bsched-mem` — an Alpha 21164-like memory hierarchy.
//!
//! Models the memory system the paper simulates (§4.3, Tables 2–3):
//! a small direct-mapped first-level data cache with a *lockup-free*
//! miss-address file (MSHRs), an on-chip second-level cache, an off-chip
//! third-level (board) cache, main memory, a separate instruction cache,
//! and fully associative instruction/data TLBs.
//!
//! The [`Hierarchy`] type answers timing queries from the simulator:
//! given an address and the current cycle, when is the data ready, which
//! level served it, and was there a structural stall for an MSHR?
//!
//! ```
//! use bsched_mem::{Hierarchy, Level, MemConfig};
//!
//! let mut h = Hierarchy::new(MemConfig::alpha21164());
//! let first = h.data_read(0x1000, 0);
//! assert_ne!(first.level, Level::L1); // cold miss
//! let again = h.data_read(0x1000, first.ready_at);
//! assert_eq!(again.level, Level::L1); // now cached
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod stats;
pub mod tlb;

pub use cache::Cache;
pub use config::{CacheConfig, MemConfig, MshrPolicy, PrefetchKind};
pub use hierarchy::{Access, Hierarchy, Level};
pub use stats::MemStats;
pub use tlb::Tlb;
