//! Aggregated memory-system statistics.

use crate::hierarchy::Level;

/// Counters gathered by the [`crate::Hierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Data reads served by the L1 data cache.
    pub l1d_hits: u64,
    /// Data reads served by the second-level cache.
    pub l2_hits: u64,
    /// Data reads served by the board cache.
    pub l3_hits: u64,
    /// Data reads served by main memory.
    pub mem_reads: u64,
    /// Data-read misses merged into an already outstanding MSHR.
    pub mshr_merges: u64,
    /// Cycles lost waiting for a free MSHR (structural stalls).
    pub mshr_stall_cycles: u64,
    /// Data TLB misses.
    pub dtb_misses: u64,
    /// Instruction TLB misses.
    pub itb_misses: u64,
    /// Instruction fetches that missed the I-cache.
    pub icache_misses: u64,
    /// Store accesses.
    pub stores: u64,
    /// Cycles lost waiting for a free write-buffer entry.
    pub wb_stall_cycles: u64,
    /// Prefetch fills issued by the L1D prefetcher. Prefetch traffic is
    /// deliberately **not** part of [`MemStats::total_reads`]: only
    /// demand reads conserve against executed loads.
    pub prefetches: u64,
    /// Demand reads that found their line already in flight under a
    /// prefetch: merged with the prefetch fill (also counted in
    /// `mshr_merges`), or stalled for it under [`crate::MshrPolicy::NoMerge`].
    pub prefetch_useful: u64,
}

impl MemStats {
    /// Total **demand** data reads (prefetch fills excluded).
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.l1d_hits + self.l2_hits + self.l3_hits + self.mem_reads + self.mshr_merges
    }

    /// L1 data hit rate in [0, 1]; 0 when no reads happened.
    #[must_use]
    pub fn l1d_hit_rate(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            self.l1d_hits as f64 / total as f64
        }
    }

    pub(crate) fn record_read(&mut self, level: Level) {
        match level {
            Level::L1 => self.l1d_hits += 1,
            Level::L2 => self.l2_hits += 1,
            Level::L3 => self.l3_hits += 1,
            Level::Memory => self.mem_reads += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let mut s = MemStats::default();
        s.record_read(Level::L1);
        s.record_read(Level::L1);
        s.record_read(Level::Memory);
        assert_eq!(s.total_reads(), 3);
        assert!((s.l1d_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(MemStats::default().l1d_hit_rate(), 0.0);
    }
}
