//! A set-associative cache with true-LRU replacement.

use crate::config::CacheConfig;

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    /// Monotonic counter value at last touch (true LRU).
    stamp: u64,
}

/// A single cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>, // sets * assoc, row-major by set
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let n = config.sets() * u64::from(config.assoc);
        Cache {
            config,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    stamp: 0
                };
                n as usize
            ],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.config.line) % self.config.sets()) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line / self.config.sets()
    }

    /// Looks up `addr`, allocating the line on a miss. Returns `true` on a
    /// hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_inner(addr, true)
    }

    /// Looks up `addr` without allocating on a miss (write-through,
    /// no-write-allocate stores). Returns `true` on a hit.
    pub fn probe_update(&mut self, addr: u64) -> bool {
        self.access_inner(addr, false)
    }

    fn access_inner(&mut self, addr: u64, allocate: bool) -> bool {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let assoc = self.config.assoc as usize;
        let ways = &mut self.ways[set * assoc..(set + 1) * assoc];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if allocate {
            let victim = ways
                .iter_mut()
                .min_by_key(|w| if w.valid { w.stamp } else { 0 })
                .expect("cache has at least one way");
            *victim = Way {
                tag,
                valid: true,
                stamp: self.clock,
            };
        }
        false
    }

    /// `true` if `addr`'s line is currently resident (no state change).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let assoc = self.config.assoc as usize;
        self.ways[set * assoc..(set + 1) * assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Hit count so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B.
        Cache::new(CacheConfig {
            size: 128,
            line: 16,
            assoc: 2,
            latency: 2,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x48), "same 16-byte line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line 16, 4 sets => set stride 64).
        let (a, b, d) = (0x000, 0x040, 0x080);
        c.access(a);
        c.access(b);
        c.access(a); // refresh a; b is now LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn probe_update_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe_update(0x100));
        assert!(!c.contains(0x100));
        c.access(0x100);
        assert!(c.probe_update(0x100));
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 2 sets x 1 way x 16B = 32B direct-mapped.
        let mut c = Cache::new(CacheConfig {
            size: 32,
            line: 16,
            assoc: 1,
            latency: 2,
        });
        c.access(0x00);
        c.access(0x20); // same set, evicts
        assert!(!c.contains(0x00));
        assert!(c.contains(0x20));
        assert!(c.contains(0x2f), "whole line resident");
    }
}
