//! Fully associative translation lookaside buffers with LRU replacement.

/// A fully associative TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last-use stamp)
    capacity: usize,
    page_size: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries over `page_size`-byte
    /// pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_size` is not a power of two.
    #[must_use]
    pub fn new(capacity: usize, page_size: u64) -> Self {
        assert!(capacity > 0);
        assert!(page_size.is_power_of_two());
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_size,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`; returns `true` on a TLB hit. Misses install the
    /// page, evicting the least recently used entry when full.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr / self.page_size;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("TLB is non-empty when full");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.clock));
        false
    }

    /// Hit count so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(2, 8192);
        assert!(!t.access(0));
        assert!(t.access(8191));
        assert!(!t.access(8192));
        assert_eq!(t.misses(), 2);
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // refresh page 0; page 1 LRU
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0));
        assert!(!t.access(4096), "page 1 was evicted");
    }
}
