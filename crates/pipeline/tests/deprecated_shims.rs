//! The pre-0.3 entry points — the free functions `compile` and
//! `compile_and_run`, and the `Runner` memoizer — survive as
//! `#[deprecated]` shims over the same implementation the `Experiment`
//! builder uses. These tests pin the equivalence: the shims must keep
//! producing bit-identical results to the builder until they are
//! removed, so downstream code can migrate incrementally.

#![allow(deprecated)]

use bsched_pipeline::{
    compile, compile_and_run, resolve_kernel, CompileOptions, ConfigKind, Experiment,
    ExperimentConfig, Runner, SchedulerKind,
};

fn options() -> CompileOptions {
    CompileOptions::new(SchedulerKind::Balanced).with_unroll(4)
}

#[test]
fn deprecated_compile_matches_the_builder() {
    let program = resolve_kernel("TRFD").unwrap();
    let opts = options();
    let old = compile(&program, &opts).expect("shim compiles");
    let new = Experiment::builder()
        .program("TRFD", program)
        .compile_options(opts)
        .build()
        .unwrap()
        .compile()
        .expect("builder compiles");
    // Debug output covers every instruction and statistic field, so
    // equal strings mean equal compilations.
    assert_eq!(format!("{:?}", old.stats), format!("{:?}", new.stats));
    assert_eq!(
        format!("{:?}", old.program),
        format!("{:?}", new.program),
        "shim and builder compiled different code"
    );
}

#[test]
fn deprecated_compile_and_run_matches_the_builder() {
    let program = resolve_kernel("ora").unwrap();
    let opts = options();
    let old = compile_and_run(&program, &opts).expect("shim runs");
    let new = Experiment::builder()
        .program("ora", program)
        .compile_options(opts)
        .build()
        .unwrap()
        .run()
        .expect("builder runs");
    assert!(old.checksum_ok);
    assert!(new.checksum_ok);
    assert_eq!(format!("{:?}", old.metrics), format!("{:?}", new.metrics));
    assert_eq!(format!("{:?}", old.compile), format!("{:?}", new.compile));
}

#[test]
fn deprecated_runner_matches_the_builder() {
    let program = resolve_kernel("TRFD").unwrap();
    let config = ExperimentConfig {
        scheduler: SchedulerKind::Balanced,
        kind: ConfigKind::Base,
    };
    let mut runner = Runner::new();
    let old = runner
        .run("TRFD", &program, config)
        .expect("runner runs")
        .metrics
        .clone();
    // A second call must be answered from the memo, identically.
    let again = runner.run("TRFD", &program, config).unwrap().metrics.clone();
    assert_eq!(format!("{old:?}"), format!("{again:?}"));
    let new = Experiment::builder()
        .program("TRFD", program)
        .compile_options(config.options())
        .build()
        .unwrap()
        .run()
        .expect("builder runs");
    assert_eq!(format!("{old:?}"), format!("{:?}", new.metrics));
}
