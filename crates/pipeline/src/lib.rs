//! `bsched-pipeline` — the end-to-end compile-and-simulate driver.
//!
//! Reproduces the paper's methodology (§4): a kernel program is run
//! through the Multiflow-style phase order —
//!
//! 1. predication of simple conditionals (cmov),
//! 2. locality analysis with its peeling/unrolling/marking (§3.3),
//! 3. loop unrolling of the remaining innermost loops (§3.1),
//! 4. cleanup (copy propagation, DCE, chain merging),
//! 5. profile-guided trace scheduling (§3.2),
//! 6. basic-block list scheduling with traditional or balanced weights,
//! 7. linear-scan register allocation with spill insertion —
//!
//! and then executed on the Alpha 21164-like timing simulator. Every
//! compiled configuration is cross-checked against the reference
//! interpreter: the observable memory checksum must match the unoptimized
//! program's.
//!
//! ```
//! use bsched_pipeline::{Experiment, OptLevel, SchedulerKind};
//! use bsched_workloads::lang::ast::{Expr, Index};
//! use bsched_workloads::lang::{ArrayInit, Kernel};
//!
//! let mut k = Kernel::new("demo");
//! let a = k.array("a", 64, ArrayInit::Ramp(0.0, 1.0));
//! let i = k.int_var("i");
//! let body = vec![k.store(a, Index::of(i), Expr::load(a, Index::of(i)) * Expr::Float(2.0))];
//! k.push(k.for_loop(i, Expr::Int(0), Expr::Int(64), body));
//! let program = k.lower();
//!
//! let run = Experiment::builder()
//!     .program("demo", program)
//!     .opts(OptLevel::Unroll4)
//!     .scheduler(SchedulerKind::Balanced)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(run.checksum_ok);
//! assert!(run.metrics.cycles > 0);
//! ```
//!
//! Suite kernels resolve by name: `Experiment::builder().kernel("TRFD")`.
//! The pre-0.3 free functions ([`compile`], [`compile_and_run`]) and the
//! [`Runner`] memoizer remain as deprecated shims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod experiment;
pub mod experiments;
pub mod options;
pub mod run;
pub mod table;

pub use bsched_core::{SchedulerKind, TieBreak};
#[allow(deprecated)]
pub use compile::compile;
pub use compile::{CompileStats, Compiled, PipelineError};
pub use experiment::{
    resolve_kernel, Experiment, ExperimentBuilder, ExperimentError, OptLevel, Session,
};
#[allow(deprecated)]
pub use experiments::Runner;
pub use experiments::{standard_grid, ConfigKind, ExperimentConfig};
pub use bsched_sim::{MachineInfo, MachineSpec, PredictorKind, SampleConfig, SampleStats, SimEngine, SimMode};
pub use options::CompileOptions;
#[allow(deprecated)]
pub use run::compile_and_run;
pub use run::RunResult;
pub use table::Table;
