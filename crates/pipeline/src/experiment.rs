//! The unified `Experiment` façade — the public entry point for
//! compiling and simulating one experimental configuration.
//!
//! Everything the table/figure binaries, the harness, and downstream
//! users need funnels through one typed builder:
//!
//! ```
//! use bsched_pipeline::{Experiment, OptLevel, SchedulerKind};
//! use bsched_sim::MachineSpec;
//!
//! let session = Experiment::builder()
//!     .kernel("TRFD")
//!     .opts(OptLevel::Unroll4)
//!     .scheduler(SchedulerKind::Balanced)
//!     .machine(MachineSpec::alpha21164())
//!     .build()
//!     .unwrap();
//! let run = session.run().unwrap();
//! assert!(run.checksum_ok);
//! ```
//!
//! The builder validates kernel names against the workload suite (an
//! unknown name errors with the list of valid choices), applies the
//! optimization level, and resolves the effective [`CompileOptions`].
//! [`Session`] is the frozen, validated configuration; [`Session::run`]
//! compiles, simulates, and cross-checks against the reference
//! interpreter, and [`Session::compile`] stops after code generation.
//!
//! The pre-0.3 free functions (`compile`, `compile_and_run`) and the
//! `Runner` memoizer remain as `#[deprecated]` shims over the same
//! implementation.

use crate::compile::{compile_impl, Compiled, PipelineError};
use crate::experiments::ConfigKind;
use crate::options::CompileOptions;
use crate::run::{run_impl, RunResult};
use bsched_core::{SchedulerKind, TieBreak};
use bsched_ir::Program;
use bsched_sim::{MachineSpec, SimConfig, SimEngine, SimMode};

/// A named optimization level: the ILP-increasing transformation sets
/// evaluated in the paper, with the paper's unroll factors baked in.
///
/// This is the builder-facing face of [`ConfigKind`]; arbitrary factors
/// remain available through [`ExperimentBuilder::config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No ILP-increasing optimization.
    #[default]
    None,
    /// Loop unrolling by 4.
    Unroll4,
    /// Loop unrolling by 8.
    Unroll8,
    /// Trace scheduling over 4-way unrolled loops.
    Unroll4Trace,
    /// Trace scheduling over 8-way unrolled loops.
    Unroll8Trace,
    /// Locality analysis alone.
    Locality,
    /// Locality analysis plus 4-way unrolling.
    LocalityUnroll4,
    /// Locality analysis plus 8-way unrolling.
    LocalityUnroll8,
    /// Locality analysis, trace scheduling, 4-way unrolling.
    LocalityUnroll4Trace,
    /// Locality analysis, trace scheduling, 8-way unrolling.
    LocalityUnroll8Trace,
}

impl OptLevel {
    /// Every level, in the paper's table order.
    pub const ALL: [OptLevel; 10] = [
        OptLevel::None,
        OptLevel::Unroll4,
        OptLevel::Unroll8,
        OptLevel::Unroll4Trace,
        OptLevel::Unroll8Trace,
        OptLevel::Locality,
        OptLevel::LocalityUnroll4,
        OptLevel::LocalityUnroll8,
        OptLevel::LocalityUnroll4Trace,
        OptLevel::LocalityUnroll8Trace,
    ];
}

impl From<OptLevel> for ConfigKind {
    fn from(level: OptLevel) -> ConfigKind {
        match level {
            OptLevel::None => ConfigKind::Base,
            OptLevel::Unroll4 => ConfigKind::Lu(4),
            OptLevel::Unroll8 => ConfigKind::Lu(8),
            OptLevel::Unroll4Trace => ConfigKind::TrsLu(4),
            OptLevel::Unroll8Trace => ConfigKind::TrsLu(8),
            OptLevel::Locality => ConfigKind::La,
            OptLevel::LocalityUnroll4 => ConfigKind::LaLu(4),
            OptLevel::LocalityUnroll8 => ConfigKind::LaLu(8),
            OptLevel::LocalityUnroll4Trace => ConfigKind::LaTrsLu(4),
            OptLevel::LocalityUnroll8Trace => ConfigKind::LaTrsLu(8),
        }
    }
}

/// Errors raised while building a [`Session`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The kernel name does not exist in the workload suite. Carries the
    /// full list of valid names for the error message.
    UnknownKernel {
        /// The name that failed to resolve.
        name: String,
        /// Every valid kernel name, in the paper's Table 1 order.
        valid: Vec<&'static str>,
    },
    /// Neither [`ExperimentBuilder::kernel`] nor
    /// [`ExperimentBuilder::program`] was called.
    MissingProgram,
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::UnknownKernel { name, valid } => {
                write!(f, "unknown kernel '{name}'; valid kernels: {}", valid.join(", "))
            }
            ExperimentError::MissingProgram => {
                write!(f, "no program: call .kernel(name) or .program(name, program)")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Resolves a workload kernel name, or returns the
/// [`ExperimentError::UnknownKernel`] listing every valid choice.
///
/// The same validation backs `all_experiments --kernels`.
///
/// # Errors
///
/// Returns [`ExperimentError::UnknownKernel`] when the name is not in
/// the suite.
pub fn resolve_kernel(name: &str) -> Result<Program, ExperimentError> {
    match bsched_workloads::suite::kernel_by_name(name) {
        Some(spec) => Ok(spec.program()),
        None => Err(ExperimentError::UnknownKernel {
            name: name.to_string(),
            valid: bsched_workloads::suite::all_kernels()
                .iter()
                .map(|k| k.name)
                .collect(),
        }),
    }
}

/// The entry point of the experiment API: [`Experiment::builder`].
#[derive(Debug, Clone, Copy)]
pub struct Experiment;

impl Experiment {
    /// Starts building an experiment session.
    #[must_use]
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }
}

/// Typed builder for one experiment configuration. See the
/// [module docs](self) for the canonical usage.
#[derive(Debug, Clone, Default)]
pub struct ExperimentBuilder {
    kernel: Option<String>,
    program: Option<(String, Program)>,
    config: ConfigKind2,
    scheduler: SchedulerKind,
    sim: Option<SimConfig>,
    weight_cap: Option<u32>,
    tie_break: Option<TieBreak>,
    unroll_budget: Option<usize>,
    exact_budget: Option<u64>,
    predicate: Option<bool>,
    selective: Option<bool>,
    reference_weights: bool,
    options_override: Option<CompileOptions>,
    trace: bool,
    engine: SimEngine,
    sim_mode: SimMode,
}

/// `ConfigKind` with a `Default`, private to the builder.
#[derive(Debug, Clone, Copy)]
struct ConfigKind2(ConfigKind);

impl Default for ConfigKind2 {
    fn default() -> Self {
        ConfigKind2(ConfigKind::Base)
    }
}

impl ExperimentBuilder {
    /// Selects a workload-suite kernel by its paper name (validated at
    /// [`build`](Self::build) time).
    #[must_use]
    pub fn kernel(mut self, name: impl Into<String>) -> Self {
        self.kernel = Some(name.into());
        self
    }

    /// Supplies an explicit program (custom kernels, the harness).
    /// Overrides [`kernel`](Self::kernel).
    #[must_use]
    pub fn program(mut self, name: impl Into<String>, program: Program) -> Self {
        self.program = Some((name.into(), program));
        self
    }

    /// Sets the optimization level.
    #[must_use]
    pub fn opts(mut self, level: OptLevel) -> Self {
        self.config = ConfigKind2(level.into());
        self
    }

    /// Sets an optimization configuration with an arbitrary unroll
    /// factor (the [`OptLevel`] levels cover the paper's 4 and 8).
    #[must_use]
    pub fn config(mut self, kind: ConfigKind) -> Self {
        self.config = ConfigKind2(kind);
        self
    }

    /// Sets the load-weight policy (default: balanced).
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the machine the experiment simulates (default:
    /// [`MachineSpec::alpha21164`], the paper's machine). Accepts any
    /// registry name or spec-grammar string via
    /// [`MachineSpec`]'s `FromStr`, or a programmatic
    /// [`MachineSpec::custom`].
    #[must_use]
    pub fn machine(mut self, machine: MachineSpec) -> Self {
        self.sim = Some(machine.config());
        self
    }

    /// Sets the simulator configuration from a raw knob struct,
    /// bypassing machine validation.
    #[deprecated(
        since = "0.5.0",
        note = "describe the machine: .machine(MachineSpec::custom(sim)) \
                — or name a registered one"
    )]
    #[must_use]
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Overrides the balanced weight cap (ablations).
    #[must_use]
    pub fn weight_cap(mut self, cap: u32) -> Self {
        self.weight_cap = Some(cap);
        self
    }

    /// Overrides the scheduler tie-break order (ablations).
    #[must_use]
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = Some(tie_break);
        self
    }

    /// Overrides the unrolled-body instruction budget (ablations).
    #[must_use]
    pub fn unroll_budget(mut self, budget: usize) -> Self {
        self.unroll_budget = Some(budget);
        self
    }

    /// Overrides the exact-search node budget (the
    /// [`SchedulerKind::Exact`] arm only; a deterministic unit, part of
    /// harness cache keys).
    #[must_use]
    pub fn exact_budget(mut self, budget: u64) -> Self {
        self.exact_budget = Some(budget);
        self
    }

    /// Switches predication of simple conditionals (ablations).
    #[must_use]
    pub fn predicate(mut self, on: bool) -> Self {
        self.predicate = Some(on);
        self
    }

    /// Switches selective scheduling under locality analysis (ablations).
    #[must_use]
    pub fn selective(mut self, on: bool) -> Self {
        self.selective = Some(on);
        self
    }

    /// Routes balanced-weight computation through the retained naive
    /// reference implementation (identical results, pre-kernel cost) —
    /// the "before" arm of the perf-trajectory benches.
    #[must_use]
    pub fn reference_weights(mut self, on: bool) -> Self {
        self.reference_weights = on;
        self
    }

    /// Supplies fully-formed [`CompileOptions`], bypassing every other
    /// axis except the program. Escape hatch for the harness, whose
    /// cache keys are keyed on complete option sets.
    #[must_use]
    pub fn compile_options(mut self, options: CompileOptions) -> Self {
        self.options_override = Some(options);
        self
    }

    /// Enables `bsched-trace` observability for this session's
    /// [`run`](Session::run) / [`compile`](Session::compile) calls:
    /// per-pass spans, scheduler region stats, and per-load interlock
    /// attribution, collectible with `bsched_trace::drain`.
    ///
    /// Observability only — results are byte-identical either way, and
    /// the flag is deliberately *not* part of [`CompileOptions`], so
    /// harness cache keys are unaffected. (Trace *scheduling*, the
    /// compiler optimization, is selected through [`opts`](Self::opts)
    /// instead.)
    #[must_use]
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Selects the simulation engine for this session's
    /// [`run`](Session::run) calls (default:
    /// [`SimEngine::BlockCompiled`]).
    ///
    /// Both engines produce bit-identical metrics, trace attribution,
    /// and checksums — the choice is an execution detail like
    /// [`trace`](Self::trace), deliberately *not* part of
    /// [`CompileOptions`], so harness cache keys are unaffected and a
    /// cache warmed under one engine is 100% hits under the other.
    #[must_use]
    pub fn engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects exact or sampled simulation for this session's
    /// [`run`](Session::run) calls (default: [`SimMode::Exact`]).
    ///
    /// Like [`engine`](Self::engine) this is an execution axis,
    /// deliberately *not* part of [`CompileOptions`], so harness cache
    /// keys are unaffected — but unlike the engine axis it is **not**
    /// metrics-invariant: sampled runs estimate cycle-level metrics from
    /// representative intervals (instruction counts and the checksum
    /// stay exact), so the harness must never let sampled results into
    /// the exact-result cache.
    #[must_use]
    pub fn sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }

    /// Validates the configuration and freezes it into a [`Session`].
    ///
    /// # Errors
    ///
    /// [`ExperimentError::UnknownKernel`] for a bad kernel name,
    /// [`ExperimentError::MissingProgram`] when no program was selected.
    pub fn build(self) -> Result<Session, ExperimentError> {
        let (name, program) = match (self.program, self.kernel) {
            (Some((name, program)), _) => (name, program),
            (None, Some(name)) => {
                let program = resolve_kernel(&name)?;
                (name, program)
            }
            (None, None) => return Err(ExperimentError::MissingProgram),
        };
        let options = if let Some(options) = self.options_override {
            options
        } else {
            let mut o = self.config.0.options(self.scheduler);
            if let Some(sim) = self.sim {
                o = o.with_sim(sim);
            }
            if let Some(cap) = self.weight_cap {
                o = o.with_weight_cap(cap);
            }
            if let Some(tb) = self.tie_break {
                o = o.with_tie_break(tb);
            }
            if let Some(b) = self.unroll_budget {
                o = o.with_unroll_budget(b);
            }
            if let Some(b) = self.exact_budget {
                o = o.with_exact_budget(b);
            }
            if self.predicate == Some(false) {
                o = o.without_predication();
            }
            if self.selective == Some(false) {
                o = o.without_selective();
            }
            if self.reference_weights {
                o = o.with_reference_weights();
            }
            o
        };
        Ok(Session {
            name,
            program,
            options,
            trace: self.trace,
            engine: self.engine,
            sim_mode: self.sim_mode,
        })
    }
}

/// A validated, frozen experiment: one program under one full option
/// set. Created by [`ExperimentBuilder::build`].
#[derive(Debug, Clone)]
pub struct Session {
    name: String,
    program: Program,
    options: CompileOptions,
    trace: bool,
    engine: SimEngine,
    sim_mode: SimMode,
}

impl Session {
    /// The experiment's program name (kernel name or custom).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source program.
    #[must_use]
    pub fn source(&self) -> &Program {
        &self.program
    }

    /// The resolved compile options.
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The table label (`BS+LU4+TrS`, …) for this configuration.
    #[must_use]
    pub fn label(&self) -> String {
        self.options.label()
    }

    /// Whether this session enables `bsched-trace` observability (see
    /// [`ExperimentBuilder::trace`]).
    #[must_use]
    pub fn traced(&self) -> bool {
        self.trace
    }

    /// The simulation engine this session runs on (see
    /// [`ExperimentBuilder::engine`]).
    #[must_use]
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// The simulation mode this session runs in (see
    /// [`ExperimentBuilder::sim_mode`]).
    #[must_use]
    pub fn sim_mode(&self) -> SimMode {
        self.sim_mode
    }

    /// An enable guard when this session is traced, `None` otherwise.
    fn trace_scope(&self) -> Option<bsched_trace::EnableGuard> {
        self.trace.then(bsched_trace::enable_scope)
    }

    /// Compiles and simulates, cross-checking the simulator's memory
    /// against the reference interpreter.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`]s from compilation and simulation.
    pub fn run(&self) -> Result<RunResult, PipelineError> {
        let _trace = self.trace_scope();
        run_impl(&self.program, &self.options, self.engine, self.sim_mode)
    }

    /// Compiles only (no simulation): the full phase order through
    /// register allocation.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`]s from compilation.
    pub fn compile(&self) -> Result<Compiled, PipelineError> {
        let _trace = self.trace_scope();
        compile_impl(&self.program, &self.options)
    }

    /// [`Session::compile`] that also returns the basic-block scheduling
    /// audit — the pre-schedule region instructions, the weights the list
    /// scheduler saw, and the emitted orders. `bsched-verify` rebuilds
    /// each region's dependence DAG from this record and proves the
    /// schedule legal.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`]s from compilation.
    pub fn compile_audited(&self) -> Result<(Compiled, bsched_core::ScheduleAudit), PipelineError> {
        let _trace = self.trace_scope();
        crate::compile::compile_audited_impl(&self.program, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_suite_kernels() {
        let s = Experiment::builder()
            .kernel("TRFD")
            .opts(OptLevel::Unroll4)
            .scheduler(SchedulerKind::Balanced)
            .build()
            .unwrap();
        assert_eq!(s.name(), "TRFD");
        assert_eq!(s.label(), "BS+LU4");
        assert!(s.options().unroll == Some(4) && !s.options().trace);
    }

    #[test]
    fn unknown_kernel_lists_valid_choices() {
        let err = Experiment::builder().kernel("nope").build().unwrap_err();
        let ExperimentError::UnknownKernel { name, valid } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert_eq!(name, "nope");
        assert_eq!(valid.len(), 17);
        let msg = err.to_string();
        assert!(msg.contains("unknown kernel 'nope'"), "{msg}");
        assert!(msg.contains("tomcatv") && msg.contains("ARC2D"), "{msg}");
    }

    #[test]
    fn missing_program_errors() {
        assert_eq!(
            Experiment::builder().build().unwrap_err(),
            ExperimentError::MissingProgram
        );
    }

    #[test]
    fn opt_levels_map_onto_config_kinds() {
        assert_eq!(ConfigKind::from(OptLevel::None), ConfigKind::Base);
        assert_eq!(ConfigKind::from(OptLevel::Unroll8Trace), ConfigKind::TrsLu(8));
        assert_eq!(
            ConfigKind::from(OptLevel::LocalityUnroll4Trace),
            ConfigKind::LaTrsLu(4)
        );
        // Every level resolves to a distinct configuration.
        let kinds: std::collections::HashSet<ConfigKind> =
            OptLevel::ALL.iter().map(|&l| l.into()).collect();
        assert_eq!(kinds.len(), OptLevel::ALL.len());
    }

    #[test]
    fn builder_matches_manual_options() {
        let s = Experiment::builder()
            .kernel("ora")
            .opts(OptLevel::LocalityUnroll8Trace)
            .scheduler(SchedulerKind::Balanced)
            .machine(MachineSpec::alpha21164())
            .build()
            .unwrap();
        let manual = ConfigKind::LaTrsLu(8).options(SchedulerKind::Balanced);
        assert_eq!(format!("{:?}", s.options()), format!("{manual:?}"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_sim_shim_matches_machine_builder() {
        // Satellite of the MachineSpec migration: the raw-config shim
        // and the machine builder resolve to identical sessions.
        let cfg = SimConfig::alpha21164().with_mshrs(2);
        let shim = Experiment::builder().kernel("TRFD").sim(cfg).build().unwrap();
        let machined = Experiment::builder()
            .kernel("TRFD")
            .machine(MachineSpec::custom(cfg))
            .build()
            .unwrap();
        assert_eq!(
            format!("{:?}", shim.options()),
            format!("{:?}", machined.options())
        );
    }

    #[test]
    fn machine_builder_threads_zoo_configs() {
        let wide: MachineSpec = "wide4".parse().unwrap();
        let s = Experiment::builder()
            .kernel("TRFD")
            .machine(wide.clone())
            .build()
            .unwrap();
        assert_eq!(s.options().sim, wide.config());
        assert_eq!(s.options().sim.issue_width, 4);
    }

    #[test]
    fn session_runs_end_to_end() {
        let s = Experiment::builder()
            .kernel("TRFD")
            .scheduler(SchedulerKind::Traditional)
            .build()
            .unwrap();
        let run = s.run().unwrap();
        assert!(run.checksum_ok);
        assert!(run.metrics.cycles > 0);
        let compiled = s.compile().unwrap();
        assert!(compiled.program.main().inst_count() > 0);
    }

    #[test]
    fn trace_axis_is_observability_only() {
        let traced = Experiment::builder().kernel("TRFD").trace(true).build().unwrap();
        assert!(traced.traced());
        let plain = Experiment::builder().kernel("TRFD").build().unwrap();
        assert!(!plain.traced());
        // Tracing is not a compile axis: the resolved options (and hence
        // every harness cache key) are identical either way.
        assert_eq!(
            format!("{:?}", traced.options()),
            format!("{:?}", plain.options())
        );
    }

    #[test]
    fn engine_axis_is_execution_only() {
        let interp = Experiment::builder()
            .kernel("TRFD")
            .engine(SimEngine::Interpret)
            .build()
            .unwrap();
        let block = Experiment::builder()
            .kernel("TRFD")
            .engine(SimEngine::BlockCompiled)
            .build()
            .unwrap();
        assert_eq!(interp.engine(), SimEngine::Interpret);
        assert_eq!(block.engine(), SimEngine::BlockCompiled);
        // Like tracing, the engine is not a compile axis: resolved
        // options (and hence every harness cache key) are identical,
        // and so are the results.
        assert_eq!(
            format!("{:?}", interp.options()),
            format!("{:?}", block.options())
        );
        let a = interp.run().unwrap();
        let b = block.run().unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert!(a.checksum_ok && b.checksum_ok);
    }

    #[test]
    fn sim_mode_axis_is_execution_only() {
        use bsched_sim::SampleConfig;
        let exact = Experiment::builder().kernel("TRFD").build().unwrap();
        let sampled = Experiment::builder()
            .kernel("TRFD")
            .sim_mode(SimMode::Sampled(SampleConfig::default()))
            .build()
            .unwrap();
        assert_eq!(exact.sim_mode(), SimMode::Exact);
        assert!(sampled.sim_mode().is_sampled());
        // The mode is not a compile axis: resolved options (and hence
        // every harness cache key) are identical either way.
        assert_eq!(
            format!("{:?}", exact.options()),
            format!("{:?}", sampled.options())
        );
        // The functional outcome stays exact in sampled mode: counts and
        // checksum match, and the run records its sampling summary.
        let e = exact.run().unwrap();
        let s = sampled.run().unwrap();
        assert!(e.sample.is_none());
        let stats = s.sample.expect("sampled run reports stats");
        assert!(stats.clusters >= 1 && stats.clusters <= stats.intervals);
        assert!(stats.sampled_insts <= stats.total_insts);
        assert!(s.checksum_ok);
        assert_eq!(e.metrics.insts, s.metrics.insts);
        assert!(s.metrics.cycles > 0);
    }

    #[test]
    fn ablation_axes_apply() {
        let s = Experiment::builder()
            .kernel("ora")
            .weight_cap(10)
            .tie_break(TieBreak::ProgramOrder)
            .unroll_budget(32)
            .predicate(false)
            .selective(false)
            .reference_weights(true)
            .build()
            .unwrap();
        let o = s.options();
        assert_eq!(o.weight_cap, 10);
        assert_eq!(o.tie_break, TieBreak::ProgramOrder);
        assert_eq!(o.unroll_budget, Some(32));
        assert!(!o.predicate && !o.selective && o.reference_weights);
    }
}
