//! Plain-text table formatting for the experiment binaries.

use std::fmt;

/// A simple fixed-width table with a title, headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        writeln!(f, "{}", "=".repeat(total))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:>width$}", width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a speedup ratio as the paper does (`1.19`).
#[must_use]
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage (`23.3%`).
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Arithmetic mean (the paper's AVERAGE rows).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Table X: demo", &["Benchmark", "Speedup"]);
        t.row(vec!["tomcatv".into(), ratio(1.5)]);
        t.row(vec!["x".into(), ratio(0.93)]);
        let s = t.to_string();
        assert!(s.contains("Table X: demo"));
        assert!(s.contains("tomcatv"));
        assert!(s.contains("1.50"));
        assert!(s.contains("0.93"));
        assert_eq!(t.len(), 2);
        // Columns align: the two ratio cells end at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn helpers() {
        assert_eq!(ratio(1.189), "1.19");
        assert_eq!(pct(0.233), "23.3%");
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
