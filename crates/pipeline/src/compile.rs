//! The compilation pipeline.

use crate::options::CompileOptions;
use bsched_core::{schedule_function_audited, schedule_function_stats, ExactStats, ScheduleAudit};
use bsched_ir::{ExecError, Interp, Program, VerifyError};
use bsched_opt::{
    apply_locality, copy_propagate, dead_code_elim, local_cse, merge_straight_chains,
    predicate_function, trace_schedule, unroll_loop, EdgeProfile, LocalityOptions, LocalityStats,
    TraceOptions, TraceStats, UnrollLimits,
};
use bsched_regalloc::{allocate, AllocStats};
use std::collections::HashSet;
use std::fmt;

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The IR verifier rejected the program (before or after a pass).
    Verify(VerifyError),
    /// The reference interpreter or profiler failed.
    Exec(ExecError),
    /// The compiled program's observable memory differs from the
    /// reference — a miscompilation.
    ChecksumMismatch {
        /// Stage at which the divergence was detected.
        stage: &'static str,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Verify(e) => write!(f, "{e}"),
            PipelineError::Exec(e) => write!(f, "execution failed: {e}"),
            PipelineError::ChecksumMismatch { stage } => {
                write!(f, "miscompilation detected after {stage}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Verify(e)
    }
}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

/// Statistics from one compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Branches removed by predication.
    pub predicated: usize,
    /// Loops unrolled by the generic unroller.
    pub unrolled_loops: usize,
    /// Locality-analysis statistics.
    pub locality: LocalityStats,
    /// Trace-scheduling statistics.
    pub trace: TraceStats,
    /// Register-allocation statistics.
    pub alloc: AllocStats,
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
    /// Static instruction count of the final code.
    pub static_insts: usize,
    /// Exact-search statistics (regions searched, optima proven, budget
    /// fallbacks, nodes explored). All zeros unless the exact scheduler
    /// arm ran.
    pub exact: ExactStats,
}

/// A compiled program plus its statistics.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The compiled program (physical registers, scheduled, allocated).
    pub program: Program,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// Runs the full phase order on (a clone of) `source`.
///
/// # Errors
///
/// Returns a [`PipelineError`] if verification fails at any point, the
/// profiler cannot execute the program, or — the strongest guarantee —
/// the compiled program's observable memory image differs from the
/// original program's.
#[deprecated(
    since = "0.3.0",
    note = "use `Experiment::builder()…build()?.compile()` instead"
)]
pub fn compile(source: &Program, opts: &CompileOptions) -> Result<Compiled, PipelineError> {
    compile_impl(source, opts)
}

/// The phase-order implementation behind [`compile`] and
/// [`crate::Session::compile`].
pub(crate) fn compile_impl(
    source: &Program,
    opts: &CompileOptions,
) -> Result<Compiled, PipelineError> {
    let mut sink = None;
    compile_inner(source, opts, false, &mut sink)
}

/// [`compile_impl`] that also returns the basic-block scheduling audit
/// (pre-schedule regions, weights, emitted orders) for the verifier.
pub(crate) fn compile_audited_impl(
    source: &Program,
    opts: &CompileOptions,
) -> Result<(Compiled, ScheduleAudit), PipelineError> {
    let mut sink = None;
    let compiled = compile_inner(source, opts, true, &mut sink)?;
    Ok((compiled, sink.expect("audited compile records an audit")))
}

/// Runs one pass under a `pipeline.pass` span recording before/after
/// static instruction counts. With tracing off this is exactly a call
/// to `f` — no clock read, no counting, no allocation.
fn traced_pass<R>(
    name: &'static str,
    p: &mut Program,
    f: impl FnOnce(&mut Program) -> R,
) -> R {
    if !bsched_trace::enabled() {
        return f(p);
    }
    let before = p.main().inst_count() as u64;
    let span = bsched_trace::span(bsched_trace::points::PIPELINE_PASS)
        .label_with(|| name.to_string())
        .arg("before", before);
    let result = f(p);
    span.finish(&[("after", p.main().inst_count() as u64)]);
    result
}

fn compile_inner(
    source: &Program,
    opts: &CompileOptions,
    audited: bool,
    sink: &mut Option<ScheduleAudit>,
) -> Result<Compiled, PipelineError> {
    let mut compile_span = bsched_trace::span(bsched_trace::points::PIPELINE_COMPILE)
        .label_with(|| source.name().to_string());
    if compile_span.is_live() {
        compile_span = compile_span.arg("before", source.main().inst_count() as u64);
    }
    bsched_ir::verify_program(source)?;
    let reference = Interp::new(source).run()?;

    let mut p = source.clone();
    let mut stats = CompileStats::default();

    // 1. Predication.
    if opts.predicate {
        stats.predicated = traced_pass("predicate", &mut p, |p| predicate_function(p.main_mut()));
    }

    // 1b. Local CSE before the loop transforms, so the unrolling size
    // limits judge bodies the way Multiflow's optimizer would have left
    // them (repeated address chains and loads deduplicated).
    traced_pass("cleanup_pre", &mut p, |p| {
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        stats.dce_removed += dead_code_elim(p.main_mut());
    });

    // 2. Locality analysis (peels/unrolls/marks loops with reuse).
    let mut consumed: HashSet<usize> = HashSet::new();
    if opts.locality {
        let lopts = LocalityOptions {
            factor: opts.unroll,
            max_body_insts: 128,
        };
        stats.locality = traced_pass("locality", &mut p, |p| apply_locality(p.main_mut(), &lopts));
        consumed.extend(stats.locality.loops_processed.iter().copied());
    }

    // 3. Generic unrolling of the remaining innermost loops. When the
    // requested factor busts the size budget, fall back to smaller
    // factors under the same budget — the Multiflow behaviour behind the
    // paper's swm256 footnote ("the 64 instruction limit on unrolling by
    // 4 prevented swm256 from being fully unrolled; the higher limit with
    // an unrolling factor of 8 allowed more unrolling").
    if let Some(factor) = opts.unroll {
        let budget = opts
            .unroll_budget
            .unwrap_or(UnrollLimits::for_factor(factor).max_body_insts);
        traced_pass("unroll", &mut p, |p| {
            for idx in p.main().innermost_loops() {
                if consumed.contains(&idx) {
                    continue;
                }
                let mut f = factor;
                while f >= 2 {
                    let limits = UnrollLimits {
                        factor: f,
                        max_body_insts: budget,
                    };
                    if unroll_loop(p.main_mut(), idx, &limits).is_some() {
                        stats.unrolled_loops += 1;
                        break;
                    }
                    f /= 2;
                }
            }
        });
    }

    // 4. Cleanup (unrolled copies re-expose common subexpressions).
    traced_pass("cleanup_post", &mut p, |p| {
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        stats.dce_removed += dead_code_elim(p.main_mut());
        merge_straight_chains(p.main_mut());
    });
    bsched_ir::verify_program(&p)?;

    // 5. Trace scheduling, guided by a profile of the transformed code.
    if opts.trace {
        let profile = EdgeProfile::collect(&p)?;
        let topts = TraceOptions {
            weights: opts.weight_config(),
            speculation: true,
        };
        traced_pass("trace_schedule", &mut p, |p| {
            stats.trace = trace_schedule(p.main_mut(), &profile, &topts);
            stats.dce_removed += dead_code_elim(p.main_mut());
        });
        bsched_ir::verify_program(&p)?;
    }

    // 6. Basic-block scheduling.
    traced_pass("schedule", &mut p, |p| {
        if audited {
            let audit = schedule_function_audited(p.main_mut(), &opts.weight_config(), opts.tie_break);
            stats.exact = audit.exact;
            *sink = Some(audit);
        } else {
            stats.exact =
                schedule_function_stats(p.main_mut(), &opts.weight_config(), opts.tie_break);
        }
    });

    // 7. Register allocation.
    stats.alloc = traced_pass("regalloc", &mut p, allocate);
    bsched_ir::verify_program(&p)?;
    stats.static_insts = p.main().inst_count();

    // 8. Semantic cross-check against the reference interpreter.
    let compiled = Interp::new(&p).run()?;
    if compiled.checksum != reference.checksum {
        return Err(PipelineError::ChecksumMismatch {
            stage: "full pipeline",
        });
    }
    compile_span.finish(&[("after", stats.static_insts as u64)]);
    Ok(Compiled { program: p, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompileOptions;
    use bsched_core::SchedulerKind;
    use bsched_workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    fn sample() -> Program {
        let mut k = Kernel::new("sample");
        let a = k.array("a", 128, ArrayInit::Random(3));
        let b = k.array("b", 128, ArrayInit::Random(4));
        let c = k.array("c", 128, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.float_var("s");
        let body = vec![
            k.store(
                c,
                Index::of(i),
                Expr::load(a, Index::of(i)) * Expr::load(b, Index::of(i))
                    + Expr::load(b, Index::constant(0)),
            ),
            Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::load(a, Index::of(i)), Expr::Float(0.5)),
                then_: vec![k.assign(s, Expr::Var(s) + Expr::load(a, Index::of(i)))],
                else_: vec![k.assign(s, Expr::Var(s) - Expr::Float(1.0))],
            },
            k.store(c, Index::of(i), Expr::Var(s) + Expr::load(c, Index::of(i))),
        ];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(100), body));
        k.lower()
    }

    #[test]
    fn every_configuration_compiles_and_matches_reference() {
        let p = sample();
        for scheduler in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
            for unroll in [None, Some(4), Some(8)] {
                for trace in [false, true] {
                    for locality in [false, true] {
                        let mut o = CompileOptions::new(scheduler);
                        o.unroll = unroll;
                        o.trace = trace;
                        o.locality = locality;
                        let r = compile_impl(&p, &o);
                        assert!(
                            r.is_ok(),
                            "config {} failed: {:?}",
                            o.label(),
                            r.err().map(|e| e.to_string())
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn predication_reported_and_size_limit_respected() {
        let p = sample();
        let o = CompileOptions::new(SchedulerKind::Balanced).with_unroll(4);
        let c = compile_impl(&p, &o).unwrap();
        assert!(c.stats.predicated >= 1, "the if is predicated");
        // The predicated body exceeds 64/4 instructions, so the full
        // factor is refused and the unroller falls back to factor 2 —
        // the paper's swm256 partial-unrolling behaviour (§5.1 fn. 2).
        assert_eq!(c.stats.unrolled_loops, 1);
        assert!(c.stats.dce_removed > 0);
    }

    #[test]
    fn unrolling_reports_work() {
        // A lean streaming loop unrolls at factor 4.
        let mut k = Kernel::new("lean");
        let a = k.array("a", 64, ArrayInit::Random(9));
        let i = k.int_var("i");
        let body = vec![k.store(
            a,
            Index::of(i),
            Expr::load(a, Index::of(i)) * Expr::Float(2.0),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(64), body));
        let p = k.lower();
        let o = CompileOptions::new(SchedulerKind::Balanced).with_unroll(4);
        let c = compile_impl(&p, &o).unwrap();
        assert!(c.stats.unrolled_loops >= 1);
        assert!(c.stats.dce_removed > 0);
    }

    #[test]
    fn locality_consumes_loops_from_generic_unrolling() {
        let p = sample();
        let o = CompileOptions::new(SchedulerKind::Balanced)
            .with_unroll(4)
            .with_locality();
        let c = compile_impl(&p, &o).unwrap();
        assert!(!c.stats.locality.loops_processed.is_empty());
        assert_eq!(
            c.stats.unrolled_loops, 0,
            "the only loop was consumed by locality analysis"
        );
        assert!(c.stats.locality.hits_marked > 0);
    }
}
