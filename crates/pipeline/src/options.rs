//! Compilation options: the experiment axes of the paper.

use bsched_core::{SchedulerKind, TieBreak, WeightConfig};
use bsched_sim::SimConfig;

/// One point in the paper's experiment space.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Which load-weight policy schedules the code.
    pub scheduler: SchedulerKind,
    /// Loop-unrolling factor (`None` = no unrolling; the paper uses 4
    /// and 8).
    pub unroll: Option<u32>,
    /// Profile-guided trace scheduling.
    pub trace: bool,
    /// Locality analysis (peel/unroll/mark + selective scheduling).
    pub locality: bool,
    /// Predication of simple conditionals (the Multiflow compiler always
    /// does this; exposed for ablations).
    pub predicate: bool,
    /// Cap on balanced load weights (paper: 50).
    pub weight_cap: u32,
    /// Tie-break heuristic order (paper §4.2; ablations may change it).
    pub tie_break: TieBreak,
    /// Override for the unrolled-body instruction budget (`None` = the
    /// paper's 64-at-4 / 128-at-8 limits).
    pub unroll_budget: Option<usize>,
    /// Use *selective* balanced weights under locality analysis (paper
    /// §3.3). Disabling isolates the transformation benefit from the
    /// scheduling benefit (the `selective` ablation).
    pub selective: bool,
    /// Compute balanced weights with the retained naive reference
    /// implementation instead of the bitset DAG-analysis kernel. The
    /// results are identical; only the compile cost differs. Used by the
    /// perf-trajectory benches to measure before/after in one binary.
    pub reference_weights: bool,
    /// Per-region node budget for the [`SchedulerKind::Exact`]
    /// branch-and-bound search. Deterministic and metrics-relevant (a
    /// different budget can emit a different schedule), so it is part
    /// of the harness cache key; ignored by the heuristic policies.
    pub exact_budget: u64,
    /// Simulator configuration.
    pub sim: SimConfig,
}

impl CompileOptions {
    /// Baseline options for a scheduler: no ILP optimizations.
    #[must_use]
    pub fn new(scheduler: SchedulerKind) -> Self {
        CompileOptions {
            scheduler,
            unroll: None,
            trace: false,
            locality: false,
            predicate: true,
            weight_cap: bsched_ir::opcode::latency::MAX_LOAD,
            tie_break: TieBreak::Standard,
            unroll_budget: None,
            selective: true,
            reference_weights: false,
            exact_budget: bsched_core::DEFAULT_EXACT_BUDGET,
            sim: SimConfig::default(),
        }
    }

    /// Enables unrolling by `factor`.
    #[must_use]
    pub fn with_unroll(mut self, factor: u32) -> Self {
        self.unroll = Some(factor);
        self
    }

    /// Enables trace scheduling.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables locality analysis.
    #[must_use]
    pub fn with_locality(mut self) -> Self {
        self.locality = true;
        self
    }

    /// Disables predication (ablation only).
    #[must_use]
    pub fn without_predication(mut self) -> Self {
        self.predicate = false;
        self
    }

    /// Overrides the balanced weight cap (ablation only).
    #[must_use]
    pub fn with_weight_cap(mut self, cap: u32) -> Self {
        self.weight_cap = cap;
        self
    }

    /// Overrides the simulator configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Overrides the tie-break heuristic order (ablation only).
    #[must_use]
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Overrides the unrolled-body instruction budget (ablation only).
    #[must_use]
    pub fn with_unroll_budget(mut self, budget: usize) -> Self {
        self.unroll_budget = Some(budget);
        self
    }

    /// Disables selective scheduling under locality analysis (ablation
    /// only): the locality transformations still run, but every load is
    /// balanced as if unclassified.
    #[must_use]
    pub fn without_selective(mut self) -> Self {
        self.selective = false;
        self
    }

    /// Routes balanced-weight computation through the naive reference
    /// implementation (benching only; identical results).
    #[must_use]
    pub fn with_reference_weights(mut self) -> Self {
        self.reference_weights = true;
        self
    }

    /// Overrides the exact-search node budget (exact scheduler only).
    #[must_use]
    pub fn with_exact_budget(mut self, budget: u64) -> Self {
        self.exact_budget = budget;
        self
    }

    /// The weight policy the scheduler actually runs with: under locality
    /// analysis, balanced scheduling becomes *selective* (hits keep the
    /// optimistic weight, §3.3). Traditional scheduling has no locality
    /// counterpart (§5.4 footnote 3) and stays traditional. The exact
    /// arm always searches under the plain balanced weight model — it
    /// is the optimality bound the heuristics are measured against.
    #[must_use]
    pub fn weight_config(&self) -> WeightConfig {
        let kind = match (self.scheduler, self.locality && self.selective) {
            (SchedulerKind::Balanced, true) => SchedulerKind::SelectiveBalanced,
            (k, _) => k,
        };
        WeightConfig::new(kind)
            .with_cap(self.weight_cap)
            .with_reference(self.reference_weights)
            .with_exact_budget(self.exact_budget)
    }

    /// A short label like `BS+LU4+TrS+LA` used in tables.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = String::from(match self.scheduler {
            SchedulerKind::Traditional => "TS",
            SchedulerKind::Exact => "EX",
            _ => "BS",
        });
        if let Some(f) = self.unroll {
            s.push_str(&format!("+LU{f}"));
        }
        if self.trace {
            s.push_str("+TrS");
        }
        if self.locality {
            s.push_str("+LA");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        let o = CompileOptions::new(SchedulerKind::Balanced);
        assert_eq!(o.label(), "BS");
        assert_eq!(
            o.with_unroll(4).with_trace().with_locality().label(),
            "BS+LU4+TrS+LA"
        );
        assert_eq!(
            CompileOptions::new(SchedulerKind::Traditional)
                .with_unroll(8)
                .label(),
            "TS+LU8"
        );
    }

    #[test]
    fn locality_promotes_balanced_to_selective() {
        let o = CompileOptions::new(SchedulerKind::Balanced).with_locality();
        assert_eq!(o.weight_config().kind, SchedulerKind::SelectiveBalanced);
        let t = CompileOptions::new(SchedulerKind::Traditional).with_locality();
        assert_eq!(t.weight_config().kind, SchedulerKind::Traditional);
        let plain = CompileOptions::new(SchedulerKind::Balanced);
        assert_eq!(plain.weight_config().kind, SchedulerKind::Balanced);
    }
}
