//! The experiment grid of the paper's evaluation and a memoizing runner.

use crate::options::CompileOptions;
use crate::run::{run_impl, RunResult};
use crate::PipelineError;
use bsched_core::SchedulerKind;
use bsched_ir::Program;
use std::collections::HashMap;

/// The optimization combinations evaluated in the paper (Tables 4–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// No ILP-increasing optimization.
    Base,
    /// Loop unrolling by the factor.
    Lu(u32),
    /// Trace scheduling plus loop unrolling by the factor (§5.2: trace
    /// scheduling is always paired with unrolling).
    TrsLu(u32),
    /// Locality analysis alone.
    La,
    /// Locality analysis plus loop unrolling.
    LaLu(u32),
    /// Locality analysis plus trace scheduling plus loop unrolling.
    LaTrsLu(u32),
}

impl ConfigKind {
    /// Builds the compile options for this configuration under a
    /// scheduler.
    #[must_use]
    pub fn options(self, scheduler: SchedulerKind) -> CompileOptions {
        let base = CompileOptions::new(scheduler);
        match self {
            ConfigKind::Base => base,
            ConfigKind::Lu(f) => base.with_unroll(f),
            ConfigKind::TrsLu(f) => base.with_unroll(f).with_trace(),
            ConfigKind::La => base.with_locality(),
            ConfigKind::LaLu(f) => base.with_unroll(f).with_locality(),
            ConfigKind::LaTrsLu(f) => base.with_unroll(f).with_trace().with_locality(),
        }
    }

    /// Short label (`LU 4`, `TrS+LU 8`, …) as the paper's tables use.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            ConfigKind::Base => "none".to_string(),
            ConfigKind::Lu(f) => format!("LU {f}"),
            ConfigKind::TrsLu(f) => format!("TrS+LU {f}"),
            ConfigKind::La => "LA".to_string(),
            ConfigKind::LaLu(f) => format!("LA+LU {f}"),
            ConfigKind::LaTrsLu(f) => format!("LA+TrS+LU {f}"),
        }
    }
}

/// A (scheduler, optimization set) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExperimentConfig {
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// The optimization combination.
    pub kind: ConfigKind,
}

impl ExperimentConfig {
    /// The compile options for this experiment.
    #[must_use]
    pub fn options(&self) -> CompileOptions {
        self.kind.options(self.scheduler)
    }
}

/// The full standard grid: {TS, BS} × {none, LU4, LU8, TrS+LU4, TrS+LU8}
/// plus BS × {LA, LA+LU4, LA+LU8, LA+TrS+LU4, LA+TrS+LU8}.
/// (Locality analysis has no traditional-scheduling counterpart, §5.4.)
#[must_use]
pub fn standard_grid() -> Vec<ExperimentConfig> {
    let mut grid = Vec::new();
    for scheduler in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
        for kind in [
            ConfigKind::Base,
            ConfigKind::Lu(4),
            ConfigKind::Lu(8),
            ConfigKind::TrsLu(4),
            ConfigKind::TrsLu(8),
        ] {
            grid.push(ExperimentConfig { scheduler, kind });
        }
    }
    for kind in [
        ConfigKind::La,
        ConfigKind::LaLu(4),
        ConfigKind::LaLu(8),
        ConfigKind::LaTrsLu(4),
        ConfigKind::LaTrsLu(8),
    ] {
        grid.push(ExperimentConfig {
            scheduler: SchedulerKind::Balanced,
            kind,
        });
    }
    grid
}

/// A memoizing experiment runner: each (kernel, configuration) pair is
/// compiled and simulated once per process.
///
/// This is the minimal single-threaded memoizer. The experiment
/// binaries run on `bsched-harness`'s `Engine` instead, which adds
/// parallel execution, an on-disk cache, and full-options cache keys;
/// one-off runs should go through [`crate::Experiment::builder`].
#[deprecated(
    since = "0.3.0",
    note = "use `Experiment::builder()` (one-off runs) or the `bsched-harness` `Engine` (grids)"
)]
#[derive(Default)]
pub struct Runner {
    cache: HashMap<(String, String), RunResult>,
}

#[allow(deprecated)]
impl Runner {
    /// Creates an empty runner.
    #[must_use]
    pub fn new() -> Self {
        Runner::default()
    }

    /// Runs (or recalls) one kernel under one configuration.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    ///
    /// # Panics
    ///
    /// Panics if the simulator's memory image diverges from the reference
    /// interpreter — that is a bug, not a measurement.
    pub fn run(
        &mut self,
        kernel_name: &str,
        program: &Program,
        config: ExperimentConfig,
    ) -> Result<&RunResult, PipelineError> {
        // Key on the full options debug form, not the display label —
        // distinct configurations (e.g. differing only in weight cap or
        // simulator parameters) can share a label.
        let key = (kernel_name.to_string(), format!("{:?}", config.options()));
        if !self.cache.contains_key(&key) {
            let result = run_impl(
                program,
                &config.options(),
                bsched_sim::SimEngine::default(),
                bsched_sim::SimMode::Exact,
            )?;
            assert!(result.checksum_ok, "simulator diverged on {kernel_name}");
            self.cache.insert(key.clone(), result);
        }
        Ok(&self.cache[&key])
    }
}

#[allow(deprecated)]
impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Runner({} cached runs)", self.cache.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_fifteen_configs() {
        let g = standard_grid();
        assert_eq!(g.len(), 15);
        assert_eq!(
            g.iter()
                .filter(|c| c.scheduler == SchedulerKind::Traditional)
                .count(),
            5
        );
        // No TS+LA combination exists.
        assert!(!g.iter().any(|c| c.scheduler == SchedulerKind::Traditional
            && matches!(
                c.kind,
                ConfigKind::La | ConfigKind::LaLu(_) | ConfigKind::LaTrsLu(_)
            )));
    }

    #[test]
    fn labels_are_unique() {
        let g = standard_grid();
        let labels: std::collections::HashSet<String> =
            g.iter().map(|c| c.options().label()).collect();
        assert_eq!(labels.len(), g.len());
    }

    #[test]
    #[allow(deprecated)]
    fn runner_memoizes() {
        use bsched_workloads::lang::ast::{Expr, Index};
        use bsched_workloads::lang::{ArrayInit, Kernel};
        let mut k = Kernel::new("tiny");
        let a = k.array("a", 32, ArrayInit::Ramp(0.0, 1.0));
        let i = k.int_var("i");
        let body = vec![k.store(
            a,
            Index::of(i),
            Expr::load(a, Index::of(i)) + Expr::Float(1.0),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(32), body));
        let p = k.lower();

        let mut r = Runner::new();
        let cfg = ExperimentConfig {
            scheduler: SchedulerKind::Balanced,
            kind: ConfigKind::Base,
        };
        let c1 = r.run("tiny", &p, cfg).unwrap().metrics.cycles;
        let c2 = r.run("tiny", &p, cfg).unwrap().metrics.cycles;
        assert_eq!(c1, c2);
        assert_eq!(format!("{r:?}"), "Runner(1 cached runs)");
    }
}
