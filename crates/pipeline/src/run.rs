//! Compile-and-simulate entry point.

use crate::compile::{compile_impl, CompileStats, PipelineError};
use crate::options::CompileOptions;
use bsched_ir::{Interp, Program};
use bsched_sim::{SampleStats, SimEngine, SimMetrics, SimMode, Simulator};

/// The result of one end-to-end run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Timing metrics from the 21164-like simulator (estimates under
    /// [`SimMode::Sampled`]; instruction counts are always exact).
    pub metrics: SimMetrics,
    /// Compilation statistics.
    pub compile: CompileStats,
    /// `true` when the simulator's final memory matched the reference
    /// interpreter's (always checked; a `false` here is a simulator bug).
    /// Sampled runs derive their checksum from an exact functional pass,
    /// so the cross-check holds there too.
    pub checksum_ok: bool,
    /// Sampling summary when the run was sampled; `None` for exact runs.
    pub sample: Option<SampleStats>,
}

/// Compiles `source` under `opts` and runs it on the timing simulator.
///
/// # Errors
///
/// Propagates [`PipelineError`]s from compilation and simulation.
#[deprecated(
    since = "0.3.0",
    note = "use `Experiment::builder()…build()?.run()` instead"
)]
pub fn compile_and_run(
    source: &Program,
    opts: &CompileOptions,
) -> Result<RunResult, PipelineError> {
    run_impl(source, opts, SimEngine::default(), SimMode::Exact)
}

/// The implementation behind [`compile_and_run`] and
/// [`crate::Session::run`].
pub(crate) fn run_impl(
    source: &Program,
    opts: &CompileOptions,
    engine: SimEngine,
    mode: SimMode,
) -> Result<RunResult, PipelineError> {
    let compiled = compile_impl(source, opts)?;
    let reference = Interp::new(source).run()?;
    let machine = bsched_sim::MachineSpec::custom(opts.sim);
    let sim = Simulator::for_machine(&compiled.program, &machine)
        .with_engine(engine)
        .with_mode(mode)
        .run()?;
    Ok(RunResult {
        metrics: sim.metrics,
        compile: compiled.stats,
        checksum_ok: sim.checksum == reference.checksum,
        sample: sim.sample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use bsched_core::SchedulerKind;
    use bsched_workloads::lang::ast::{Expr, Index};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    fn run_one(p: &Program, opts: CompileOptions) -> RunResult {
        Experiment::builder()
            .program("test", p.clone())
            .compile_options(opts)
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    fn stream_kernel(n: i64) -> Program {
        let mut k = Kernel::new("stream");
        let a = k.array("a", n as u64, ArrayInit::Random(1));
        let b = k.array("b", n as u64, ArrayInit::Random(2));
        let c = k.array("c", n as u64, ArrayInit::Zero);
        let i = k.int_var("i");
        let body = vec![k.store(
            c,
            Index::of(i),
            Expr::load(a, Index::of(i)) * Expr::Float(3.0) + Expr::load(b, Index::of(i)),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k.lower()
    }

    #[test]
    fn balanced_beats_traditional_on_streaming_loads() {
        let p = stream_kernel(2048); // 16 KB arrays: spills out of L1
        let bs = run_one(&p, CompileOptions::new(SchedulerKind::Balanced));
        let ts = run_one(&p, CompileOptions::new(SchedulerKind::Traditional));
        assert!(bs.checksum_ok && ts.checksum_ok);
        assert!(
            bs.metrics.load_interlock <= ts.metrics.load_interlock,
            "balanced scheduling must not increase load interlocks: {} vs {}",
            bs.metrics.load_interlock,
            ts.metrics.load_interlock
        );
    }

    #[test]
    fn unrolling_reduces_cycles() {
        let p = stream_kernel(1024);
        let base = run_one(&p, CompileOptions::new(SchedulerKind::Balanced));
        let lu4 = run_one(&p, CompileOptions::new(SchedulerKind::Balanced).with_unroll(4));
        assert!(
            lu4.metrics.cycles < base.metrics.cycles,
            "LU4 must speed up a streaming loop: {} vs {}",
            lu4.metrics.cycles,
            base.metrics.cycles
        );
        assert!(lu4.metrics.insts.total() < base.metrics.insts.total());
    }

    #[test]
    fn locality_runs_and_stays_correct() {
        let p = stream_kernel(512);
        let la = run_one(&p, CompileOptions::new(SchedulerKind::Balanced).with_locality());
        assert!(la.checksum_ok);
        assert!(la.compile.locality.hits_marked > 0);
    }
}
