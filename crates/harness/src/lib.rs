//! `bsched-harness` — the parallel, content-cached experiment-execution
//! engine behind every table/figure binary.
//!
//! The paper's data (Tables 4–9, §5.5, the superscalar sweep) is a grid
//! of independent experiment *cells* — `(kernel, CompileOptions)` pairs,
//! where the options embed the full machine configuration. The table
//! binaries overlap heavily in the cells they need: Table 8 re-derives
//! everything Tables 5–7 already computed. This crate makes that grid a
//! first-class object:
//!
//! 1. **Enumeration & deduplication** — [`ExperimentCell`] derives a
//!    canonical, version-stamped key ([`cell::CACHE_SCHEMA_VERSION`])
//!    from every result-affecting field of the cell; equal cells are
//!    executed once, no matter how many tables request them.
//! 2. **Parallel execution** — a std-only work-stealing pool
//!    ([`pool`]): shared injector + per-worker deques, sized by
//!    `std::thread::available_parallelism()` and overridable with
//!    `BSCHED_JOBS`.
//! 3. **Memoization** — an in-memory [`store::ResultStore`] plus an
//!    on-disk content-addressed cache ([`disk::DiskCache`]) under
//!    `results/cache/`, keyed by an FNV-1a hash of the canonical cell
//!    key. Warm re-runs are near-instant; `BSCHED_NO_CACHE=1` bypasses
//!    the disk layer.
//! 4. **Observability** — a structured [`report::RunReport`]: per-cell
//!    wall times, worker utilization, cache hit/miss counts, slowest
//!    cells.
//! 5. **Verification** — with [`EngineConfig::verify`] (CLI `--verify`,
//!    env `BSCHED_VERIFY=1`), every executed cell runs the
//!    `bsched-verify` conformance suite — schedule legality, weight
//!    cross-check, differential replay, metamorphic invariants — and
//!    violations fail the run. Results carry a `verified` flag through
//!    both cache layers; a verifying run recomputes unverified entries.
//!
//! Output is deterministic by construction: results are keyed by cell
//! and looked up in the caller's iteration order, so emitted tables and
//! CSVs are byte-identical whether computed with 1 worker or N, cold or
//! warm.
//!
//! ```no_run
//! use bsched_harness::{Engine, EngineConfig, ExperimentCell};
//! use bsched_pipeline::{standard_grid, CompileOptions};
//!
//! let engine = Engine::with_standard_kernels(EngineConfig::from_env());
//! let cells: Vec<ExperimentCell> = engine
//!     .kernel_names()
//!     .iter()
//!     .flat_map(|k| {
//!         standard_grid()
//!             .into_iter()
//!             .map(move |cfg| ExperimentCell::new(k, cfg.options()))
//!     })
//!     .collect();
//! engine.run(&cells).expect("grid executes");
//! engine.report().emit(); // one atomic stderr write
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod disk;
pub mod engine;
pub mod pool;
pub mod report;
pub mod store;

pub use cell::{ExperimentCell, CACHE_SCHEMA_VERSION};
pub use disk::{decode_metrics, encode_metrics};
pub use engine::{CellResult, Engine, EngineConfig, HarnessError};
pub use report::{emit_stderr, RunReport};
pub use store::ResultStore;
