//! A std-only work-stealing thread pool for embarrassingly parallel,
//! unevenly sized jobs.
//!
//! Structure (the classic shape, hand-rolled on `std` because the build
//! environment has no access to the crates registry):
//!
//! * a **shared injector** holding all job indices at the start,
//! * a **per-worker deque**; workers refill from the injector in small
//!   batches, work their own deque LIFO-free (front), and
//! * **steal** from the *back* of a victim's deque when both their deque
//!   and the injector are empty.
//!
//! Batched refills keep injector contention low; stealing from the back
//! moves the largest contiguous chunk of untouched work. Job cost in
//! this workspace spans two orders of magnitude (BDNA's huge blocks vs.
//! ora's single routine), which is exactly the workload self-scheduling
//! loop schedulers are built for.
//!
//! Results are written by job index, so the output order is independent
//! of scheduling — callers see a deterministic `Vec<T>`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many jobs a worker moves from the injector to its own deque per
/// refill.
const REFILL_BATCH: usize = 4;

/// Observability counters from one pool run.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Number of workers that ran.
    pub workers: usize,
    /// Busy (job-executing) time per worker.
    pub busy: Vec<Duration>,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Successful steal operations.
    pub steals: u64,
}

impl PoolStats {
    /// Mean worker utilization in `[0, 1]`: busy time over wall time.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.busy.iter().map(Duration::as_secs_f64).sum();
        (busy / (self.wall.as_secs_f64() * self.workers as f64)).min(1.0)
    }
}

struct Shared<T> {
    injector: Mutex<VecDeque<usize>>,
    locals: Vec<Mutex<VecDeque<usize>>>,
    results: Vec<Mutex<Option<T>>>,
    remaining: AtomicUsize,
    steals: AtomicU64,
}

/// Runs `jobs` invocations of `f` (by index) on `workers` threads and
/// returns the results in index order plus pool statistics.
///
/// With `workers == 1` no threads are spawned and jobs run inline in
/// index order — the sequential baseline the determinism tests compare
/// against.
///
/// # Panics
///
/// Propagates panics from `f` (the pool does not attempt recovery; a
/// panicking experiment is a bug upstream).
pub fn run_jobs<T, F>(workers: usize, jobs: usize, f: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let started = Instant::now();
    let workers = workers.max(1);
    if workers == 1 || jobs <= 1 {
        let t0 = Instant::now();
        let results = (0..jobs).map(&f).collect();
        let stats = PoolStats {
            workers: 1,
            busy: vec![t0.elapsed()],
            wall: started.elapsed(),
            steals: 0,
        };
        return (results, stats);
    }

    let shared = Shared {
        injector: Mutex::new((0..jobs).collect()),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        results: (0..jobs).map(|_| Mutex::new(None)).collect(),
        remaining: AtomicUsize::new(jobs),
        steals: AtomicU64::new(0),
    };

    let mut busy = vec![Duration::ZERO; workers];
    std::thread::scope(|scope| {
        let shared = &shared;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|id| scope.spawn(move || worker(id, workers, shared, f)))
            .collect();
        for (id, h) in handles.into_iter().enumerate() {
            busy[id] = h.join().expect("worker panicked");
        }
    });

    let results = shared
        .results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex poisoned")
                .expect("job completed without a result")
        })
        .collect();
    let stats = PoolStats {
        workers,
        busy,
        wall: started.elapsed(),
        steals: shared.steals.load(Ordering::Relaxed),
    };
    (results, stats)
}

fn worker<T, F>(id: usize, workers: usize, shared: &Shared<T>, f: &F) -> Duration
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut busy = Duration::ZERO;
    loop {
        let job = next_job(id, workers, shared);
        match job {
            Some(idx) => {
                let t0 = Instant::now();
                let out = f(idx);
                busy += t0.elapsed();
                *shared.results[idx].lock().expect("result mutex poisoned") = Some(out);
                shared.remaining.fetch_sub(1, Ordering::Release);
            }
            None => {
                if shared.remaining.load(Ordering::Acquire) == 0 {
                    return busy;
                }
                std::thread::yield_now();
            }
        }
    }
}

fn next_job<T>(id: usize, workers: usize, shared: &Shared<T>) -> Option<usize> {
    // 1. Own deque, front.
    if let Some(idx) = shared.locals[id].lock().expect("deque poisoned").pop_front() {
        return Some(idx);
    }
    // 2. Refill a small batch from the injector.
    {
        let mut injector = shared.injector.lock().expect("injector poisoned");
        if !injector.is_empty() {
            let mut local = shared.locals[id].lock().expect("deque poisoned");
            for _ in 0..REFILL_BATCH {
                match injector.pop_front() {
                    Some(idx) => local.push_back(idx),
                    None => break,
                }
            }
            drop(injector);
            return local.pop_front();
        }
    }
    // 3. Steal half of a victim's deque, from the back.
    for off in 1..workers {
        let victim = (id + off) % workers;
        let mut their = shared.locals[victim].lock().expect("deque poisoned");
        if their.is_empty() {
            continue;
        }
        let take = their.len().div_ceil(2);
        let stolen: Vec<usize> = (0..take).filter_map(|_| their.pop_back()).collect();
        drop(their);
        shared.steals.fetch_add(1, Ordering::Relaxed);
        let mut mine = shared.locals[id].lock().expect("deque poisoned");
        for idx in stolen {
            mine.push_back(idx);
        }
        return mine.pop_front();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicU32::new(0);
        let (results, stats) = run_jobs(4, 100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn single_worker_runs_inline() {
        let (results, stats) = run_jobs(1, 10, |i| i);
        assert_eq!(results, (0..10).collect::<Vec<_>>());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn uneven_jobs_finish_and_keep_order() {
        // Job 0 is much heavier than the rest: stealing must pick up the
        // slack and the result vector must stay in index order.
        let (results, _) = run_jobs(3, 32, |i| {
            if i == 0 {
                let mut acc = 0u64;
                for k in 0..2_000_000u64 {
                    acc = acc.wrapping_add(k).rotate_left(1);
                }
                (i as u64, acc & 1)
            } else {
                (i as u64, 0)
            }
        });
        for (i, &(idx, _)) in results.iter().enumerate() {
            assert_eq!(idx, i as u64);
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let (results, _) = run_jobs(4, 0, |i| i);
        assert!(results.is_empty());
    }

    #[test]
    fn utilization_is_a_fraction() {
        let (_, stats) = run_jobs(2, 16, |i| {
            std::thread::sleep(Duration::from_micros(200));
            i
        });
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "{u}");
    }
}
