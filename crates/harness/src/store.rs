//! The in-memory result store: one process-wide memo of executed cells,
//! sharded for concurrent access.
//!
//! The original store was a single `Mutex<HashMap>` — fine when one
//! `Engine::run` batch owns it, hostile when `bsched-serve` points many
//! connection handlers and a batch dispatcher at the same warm cache.
//! This version spreads keys across [`SHARDS`] independent
//! `RwLock<HashMap>` shards, selected by the FNV-1a hash the cell
//! already carries ([`ExperimentCell::content_hash`]), so:
//!
//! * **hits take a read lock only** — any number of threads can answer
//!   warm lookups on the same shard simultaneously, and lookups on
//!   different shards never touch the same lock at all (std has no
//!   safe lock-free map, so a shared read lock is the honest fast
//!   path);
//! * **writes contend per shard**, not per store — concurrent batch
//!   completions serialize only when two cells land in the same 1/64th
//!   of the key space.
//!
//! Hit/miss counters are relaxed atomics so the serving layer can report
//! warm-cache effectiveness without taking any lock.

use crate::cell::ExperimentCell;
use crate::engine::CellResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Number of independent shards. A power of two so the shard index is a
/// mask of the cell's content hash; 64 keeps worst-case contention at
/// 1/64th of a single-lock store while costing ~4 KiB of empty maps.
pub const SHARDS: usize = 64;

/// A thread-safe, sharded map from canonical cell key to result.
#[derive(Debug)]
pub struct ResultStore {
    shards: Vec<RwLock<HashMap<String, CellResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ResultStore {
    fn default() -> Self {
        ResultStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl ResultStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        ResultStore::default()
    }

    fn shard(&self, cell: &ExperimentCell) -> &RwLock<HashMap<String, CellResult>> {
        &self.shards[(cell.content_hash() as usize) & (SHARDS - 1)]
    }

    /// Looks up a cell (read lock on one shard only).
    #[must_use]
    pub fn get(&self, cell: &ExperimentCell) -> Option<CellResult> {
        let found = self
            .shard(cell)
            .read()
            .expect("store shard poisoned")
            .get(cell.canonical_key())
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Whether the cell is present (does not touch the hit counters).
    #[must_use]
    pub fn contains(&self, cell: &ExperimentCell) -> bool {
        self.shard(cell)
            .read()
            .expect("store shard poisoned")
            .contains_key(cell.canonical_key())
    }

    /// Inserts (or overwrites — results are deterministic, so a race
    /// between equal cells is harmless) a result.
    pub fn insert(&self, cell: &ExperimentCell, result: CellResult) {
        self.shard(cell)
            .write()
            .expect("store shard poisoned")
            .insert(cell.canonical_key().to_string(), result);
    }

    /// Number of memoized cells (sums read locks over all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("store shard poisoned").len())
            .sum()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from memory since construction.
    #[must_use]
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed since construction.
    #[must_use]
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every memoized result (the cache round-trip tests use this
    /// to force re-loading from disk). Counters are kept: they describe
    /// traffic, not contents.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("store shard poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_pipeline::{CompileOptions, SchedulerKind};
    use bsched_sim::SimMetrics;

    fn cell(kernel: &str, unroll: Option<u32>) -> ExperimentCell {
        let mut o = CompileOptions::new(SchedulerKind::Balanced);
        o.unroll = unroll;
        ExperimentCell::new(kernel, o)
    }

    fn result(cycles: u64) -> CellResult {
        CellResult {
            metrics: SimMetrics {
                cycles,
                ..SimMetrics::default()
            },
            checksum_ok: true,
            verified: false,
        }
    }

    #[test]
    fn round_trips_and_counts() {
        let store = ResultStore::new();
        let a = cell("a", None);
        assert!(store.get(&a).is_none());
        store.insert(&a, result(7));
        assert_eq!(store.get(&a).unwrap().metrics.cycles, 7);
        assert_eq!(store.len(), 1);
        assert_eq!(store.hit_count(), 1);
        assert_eq!(store.miss_count(), 1);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn keys_spread_across_shards() {
        // 200 distinct cells must not all land in one shard — that would
        // mean the shard selector ignores the hash.
        let store = ResultStore::new();
        for i in 0..200 {
            store.insert(&cell(&format!("k{i}"), Some(i % 8 + 1)), result(u64::from(i)));
        }
        assert_eq!(store.len(), 200);
        let populated = store
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().is_empty())
            .count();
        assert!(populated > SHARDS / 2, "only {populated} shards used");
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let store = std::sync::Arc::new(ResultStore::new());
        let cells: Vec<ExperimentCell> = (0..64).map(|i| cell(&format!("c{i}"), None)).collect();
        std::thread::scope(|scope| {
            for chunk in cells.chunks(16) {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for (i, c) in chunk.iter().enumerate() {
                        store.insert(c, result(i as u64));
                        assert!(store.get(c).is_some());
                    }
                });
            }
        });
        assert_eq!(store.len(), 64);
        for c in &cells {
            assert!(store.contains(c));
        }
    }
}
