//! The in-memory result store: one process-wide memo of executed cells.

use crate::cell::ExperimentCell;
use crate::engine::CellResult;
use std::collections::HashMap;
use std::sync::Mutex;

/// A thread-safe map from canonical cell key to result.
#[derive(Debug, Default)]
pub struct ResultStore {
    inner: Mutex<HashMap<String, CellResult>>,
}

impl ResultStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        ResultStore::default()
    }

    /// Looks up a cell.
    #[must_use]
    pub fn get(&self, cell: &ExperimentCell) -> Option<CellResult> {
        self.inner
            .lock()
            .expect("store poisoned")
            .get(cell.canonical_key())
            .cloned()
    }

    /// Whether the cell is present.
    #[must_use]
    pub fn contains(&self, cell: &ExperimentCell) -> bool {
        self.inner
            .lock()
            .expect("store poisoned")
            .contains_key(cell.canonical_key())
    }

    /// Inserts (or overwrites — results are deterministic, so a race
    /// between equal cells is harmless) a result.
    pub fn insert(&self, cell: &ExperimentCell, result: CellResult) {
        self.inner
            .lock()
            .expect("store poisoned")
            .insert(cell.canonical_key().to_string(), result);
    }

    /// Number of memoized cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store poisoned").len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized result (the cache round-trip tests use this
    /// to force re-loading from disk).
    pub fn clear(&self) {
        self.inner.lock().expect("store poisoned").clear();
    }
}
