//! The experiment-execution engine: deduplication, cache layering, and
//! parallel dispatch.

use crate::cell::ExperimentCell;
use crate::disk::DiskCache;
use crate::pool;
use crate::report::{CellTiming, RunReport};
use crate::store::ResultStore;
use bsched_ir::Program;
use bsched_pipeline::Experiment;
use bsched_sim::{SampleConfig, SimEngine, SimMetrics, SimMode};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// The cached outcome of one cell: the simulator metrics plus the
/// record that the interpreter cross-check passed when the cell was
/// computed (cached cells do not re-run the check — they record it).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Timing metrics of the simulated run.
    pub metrics: SimMetrics,
    /// Whether the compiled program's memory image matched the reference
    /// interpreter's. The engine refuses to serve `false`.
    pub checksum_ok: bool,
    /// Whether the `bsched-verify` conformance suite (schedule legality,
    /// weight cross-check, differential replay, metamorphic invariants)
    /// passed when this result was computed. A verifying run treats a
    /// cached result with `verified == false` as a cache miss.
    pub verified: bool,
}

/// Engine failures.
#[derive(Debug)]
pub enum HarnessError {
    /// A cell referenced a kernel the engine does not know.
    UnknownKernel(String),
    /// A cell failed to compile/simulate, or diverged from the
    /// reference interpreter.
    Cell {
        /// `kernel/label` of the failing cell.
        cell: String,
        /// The underlying failure.
        msg: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::UnknownKernel(k) => write!(f, "unknown kernel {k:?}"),
            HarnessError::Cell { cell, msg } => write!(f, "cell {cell} failed: {msg}"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for cache-missing cells.
    pub jobs: usize,
    /// Whether the on-disk cache layer is active.
    pub disk_cache: bool,
    /// Root of the on-disk cache (the `v<N>` subdirectory is appended).
    pub cache_dir: PathBuf,
    /// Whether every executed cell runs the `bsched-verify` conformance
    /// suite. Violations fail the run; cached results that were not
    /// verified when computed are recomputed.
    pub verify: bool,
    /// Which simulation engine executes cells. Both engines produce
    /// bit-identical results, so — like tracing — the choice is **not**
    /// part of any cache key: a cache warmed under one engine is 100%
    /// hits under the other.
    pub sim_engine: SimEngine,
    /// Whether cells run exactly or sampled ([`SimMode`]). Like the
    /// engine axis this is an execution detail, never part of a cache
    /// key — but unlike the engine axis it is *not* metrics-invariant,
    /// so sampled results live in a separate in-memory store and never
    /// touch the exact stores (memory or disk) in either direction.
    pub sim_mode: SimMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: default_jobs(),
            disk_cache: true,
            cache_dir: PathBuf::from("results/cache"),
            verify: false,
            sim_engine: SimEngine::default(),
            sim_mode: SimMode::Exact,
        }
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl EngineConfig {
    /// Reads the environment:
    ///
    /// * `BSCHED_JOBS=<n>` — worker count (default:
    ///   `available_parallelism()`),
    /// * `BSCHED_NO_CACHE=1` — bypass the disk cache (for benchmarking
    ///   the engine itself),
    /// * `BSCHED_CACHE_DIR=<path>` — cache root (default
    ///   `results/cache`),
    /// * `BSCHED_VERIFY=1` — run the conformance suite on every
    ///   executed cell,
    /// * `BSCHED_SIM_ENGINE=<interpret|block>` — simulation engine
    ///   (default `block`; results are bit-identical either way),
    /// * `BSCHED_SAMPLE=<spec>` — sampled execution mode; `1`/`on`/
    ///   `default` for the default [`SampleConfig`], or a spec like
    ///   `k=8,interval=1000` (`0`/`off`/`false` keep exact mode).
    ///
    /// Invalid values exit the process with code 2 and a clear message
    /// rather than degrading silently — a typo'd `BSCHED_JOBS=32x` on a
    /// long grid run must fail loudly, not crawl along single-threaded.
    /// Library callers who need to handle the error themselves use
    /// [`EngineConfig::try_from_env`].
    #[must_use]
    pub fn from_env() -> Self {
        match EngineConfig::try_from_env() {
            Ok(cfg) => cfg,
            Err(msg) => {
                eprintln!("bsched-harness: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`EngineConfig::from_env`] without the exit: invalid settings
    /// come back as an error message naming the variable and the
    /// offending value.
    ///
    /// # Errors
    ///
    /// `BSCHED_JOBS` that is not a positive integer, an empty
    /// `BSCHED_CACHE_DIR`, a `BSCHED_SIM_ENGINE` naming no known
    /// engine, or a `BSCHED_SAMPLE` that parses as neither a sampling
    /// spec nor an off switch.
    pub fn try_from_env() -> Result<Self, String> {
        let mut cfg = EngineConfig::default();
        if let Ok(v) = std::env::var("BSCHED_JOBS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => cfg.jobs = n,
                _ => {
                    return Err(format!(
                        "invalid BSCHED_JOBS={v:?}: expected a positive integer worker count"
                    ))
                }
            }
        }
        if let Ok(v) = std::env::var("BSCHED_NO_CACHE") {
            if v == "1" || v.eq_ignore_ascii_case("true") {
                cfg.disk_cache = false;
            }
        }
        if let Ok(v) = std::env::var("BSCHED_CACHE_DIR") {
            if v.trim().is_empty() {
                return Err(
                    "invalid BSCHED_CACHE_DIR=\"\": expected a cache directory path \
                     (unset the variable to use the default results/cache)"
                        .to_string(),
                );
            }
            cfg.cache_dir = PathBuf::from(v);
        }
        if let Ok(v) = std::env::var("BSCHED_VERIFY") {
            if v == "1" || v.eq_ignore_ascii_case("true") {
                cfg.verify = true;
            }
        }
        if let Ok(v) = std::env::var("BSCHED_SIM_ENGINE") {
            match v.trim().parse::<SimEngine>() {
                Ok(engine) => cfg.sim_engine = engine,
                Err(_) => {
                    return Err(format!(
                        "invalid BSCHED_SIM_ENGINE={v:?}: valid engines: {}",
                        SimEngine::valid_choices()
                    ))
                }
            }
        }
        if let Ok(v) = std::env::var("BSCHED_SAMPLE") {
            match v.trim() {
                "" | "0" | "off" | "false" => {}
                spec => match spec.parse::<SampleConfig>() {
                    Ok(sample) => cfg.sim_mode = SimMode::Sampled(sample),
                    Err(e) => return Err(format!("invalid BSCHED_SAMPLE: {e}")),
                },
            }
        }
        Ok(cfg)
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the cache root.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: PathBuf) -> Self {
        self.cache_dir = dir;
        self
    }

    /// Enables/disables the disk layer.
    #[must_use]
    pub fn with_disk_cache(mut self, on: bool) -> Self {
        self.disk_cache = on;
        self
    }

    /// Enables/disables the per-cell conformance suite.
    #[must_use]
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Overrides the simulation engine.
    #[must_use]
    pub fn with_sim_engine(mut self, engine: SimEngine) -> Self {
        self.sim_engine = engine;
        self
    }

    /// Overrides the simulation mode.
    #[must_use]
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }
}

/// The engine: kernels, cache layers, pool, and report state.
pub struct Engine {
    kernels: Vec<(String, Program)>,
    index: HashMap<String, usize>,
    config: EngineConfig,
    store: ResultStore,
    /// Estimates from sampled runs. Kept apart from `store` because the
    /// mode axis is not metrics-invariant: a sampled result must never
    /// satisfy an exact lookup (or vice versa), and sampled results
    /// never reach the disk cache at all.
    sampled_store: ResultStore,
    disk: DiskCache,
    report: Mutex<RunReport>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Engine({} kernels, {} memoized cells, {} workers)",
            self.kernels.len(),
            self.store.len(),
            self.config.jobs
        )
    }
}

impl Engine {
    /// An engine over an explicit kernel set.
    #[must_use]
    pub fn new(kernels: Vec<(String, Program)>, config: EngineConfig) -> Self {
        let index = kernels
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.clone(), i))
            .collect();
        let disk = DiskCache::new(&config.cache_dir, config.disk_cache);
        let sim_mode = match config.sim_mode {
            SimMode::Exact => "exact".to_string(),
            SimMode::Sampled(s) => format!("sampled({s})"),
        };
        let report = RunReport {
            workers: config.jobs,
            sim_engine: config.sim_engine.label().to_string(),
            sim_mode,
            ..RunReport::default()
        };
        Engine {
            kernels,
            index,
            config,
            store: ResultStore::new(),
            sampled_store: ResultStore::new(),
            disk,
            report: Mutex::new(report),
        }
    }

    /// An engine over the paper's 17-kernel workload, each lowered once.
    #[must_use]
    pub fn with_standard_kernels(config: EngineConfig) -> Self {
        let kernels = bsched_workloads::all_kernels()
            .iter()
            .map(|k| (k.name.to_string(), k.program()))
            .collect();
        Engine::new(kernels, config)
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.config.jobs
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The in-memory memo layer (sharded; see [`crate::store`]).
    /// `bsched-serve` reads its hit/miss counters for warm-cache stats.
    /// Exact results only — sampled runs use a separate store.
    #[must_use]
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The store the configured [`SimMode`] reads and writes.
    fn active_store(&self) -> &ResultStore {
        if self.config.sim_mode.is_sampled() {
            &self.sampled_store
        } else {
            &self.store
        }
    }

    /// Kernel names, in workload order.
    #[must_use]
    pub fn kernel_names(&self) -> Vec<String> {
        self.kernels.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Ensures every requested cell has a result, executing the
    /// deduplicated cache misses on the work-stealing pool.
    ///
    /// # Errors
    ///
    /// Fails on unknown kernels, pipeline errors, or an interpreter
    /// cross-check divergence (a simulator/compiler bug, not a
    /// measurement). The first failing cell in request order is
    /// reported.
    pub fn run(&self, cells: &[ExperimentCell]) -> Result<(), HarnessError> {
        self.run_where(cells, self.config.verify)
    }

    /// [`Engine::run`] with an explicit per-batch verification switch,
    /// overriding [`EngineConfig::verify`]. `bsched-serve` uses this to
    /// honour a per-request `verify` flag against one shared engine.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`].
    pub fn run_where(&self, cells: &[ExperimentCell], verify: bool) -> Result<(), HarnessError> {
        // Deduplicate within the batch, preserving request order.
        let mut unique: Vec<&ExperimentCell> = Vec::with_capacity(cells.len());
        {
            let mut seen = std::collections::HashSet::with_capacity(cells.len());
            for cell in cells {
                if seen.insert(cell.canonical_key()) {
                    unique.push(cell);
                }
            }
        }
        let deduplicated = cells.len() - unique.len();

        // Layer 1/2: memory, then disk. A verifying run only accepts
        // cached results whose conformance suite passed at compute time;
        // anything else is recomputed (and re-verified) as a miss.
        // Sampled mode reads and writes only its own memory store — the
        // disk layer holds exact results exclusively.
        let sampled = self.config.sim_mode.is_sampled();
        let store = self.active_store();
        let mut misses: Vec<&ExperimentCell> = Vec::new();
        let mut memory_hits = 0u64;
        let mut disk_hits = 0u64;
        let mut verified = 0u64;
        let usable = |r: &CellResult| !verify || r.verified;
        for &cell in &unique {
            let hit = if let Some(r) = store.get(cell) {
                usable(&r) && {
                    memory_hits += 1;
                    true
                }
            } else if let Some(r) = if sampled { None } else { self.disk.load(cell) } {
                usable(&r) && {
                    store.insert(cell, r);
                    disk_hits += 1;
                    true
                }
            } else {
                false
            };
            if hit {
                if verify {
                    verified += 1;
                }
                continue;
            }
            if !self.index.contains_key(cell.kernel()) {
                return Err(HarnessError::UnknownKernel(cell.kernel().to_string()));
            }
            misses.push(cell);
        }

        // Layer 3: execute the misses in parallel.
        let mut timings = Vec::new();
        if !misses.is_empty() {
            let (outcomes, stats) = pool::run_jobs(self.config.jobs, misses.len(), |i| {
                let cell = misses[i];
                let t0 = Instant::now();
                let span = bsched_trace::span(bsched_trace::points::HARNESS_CELL)
                    .label_with(|| cell.to_string());
                let outcome = self.execute(cell, verify);
                span.finish(&[]);
                // Workers flush per cell so a drain on the coordinating
                // thread sees every event even while the pool is alive.
                bsched_trace::flush_thread();
                (outcome, t0.elapsed())
            });
            for (cell, (outcome, wall)) in misses.iter().zip(outcomes) {
                timings.push(CellTiming {
                    cell: cell.to_string(),
                    wall,
                });
                match outcome {
                    Ok(result) => {
                        if result.verified {
                            verified += 1;
                        }
                        if !sampled {
                            self.disk.store(cell, &result);
                        }
                        store.insert(cell, result);
                    }
                    Err(e) => {
                        self.update_report(cells.len() as u64, deduplicated as u64, memory_hits, disk_hits, verified, &timings, Some(&stats));
                        return Err(e);
                    }
                }
            }
            self.update_report(
                cells.len() as u64,
                deduplicated as u64,
                memory_hits,
                disk_hits,
                verified,
                &timings,
                Some(&stats),
            );
        } else {
            self.update_report(
                cells.len() as u64,
                deduplicated as u64,
                memory_hits,
                disk_hits,
                verified,
                &timings,
                None,
            );
        }
        Ok(())
    }

    /// The memoized result for a cell, if present (from the configured
    /// mode's store).
    #[must_use]
    pub fn result(&self, cell: &ExperimentCell) -> Option<CellResult> {
        self.active_store().get(cell)
    }

    /// The metrics for a cell, computing it (and anything it needs) on
    /// demand when missing.
    ///
    /// # Errors
    ///
    /// Propagates [`HarnessError`]s from execution.
    pub fn metrics(&self, cell: &ExperimentCell) -> Result<SimMetrics, HarnessError> {
        if let Some(r) = self.active_store().get(cell) {
            return Ok(r.metrics);
        }
        self.run(std::slice::from_ref(cell))?;
        Ok(self
            .active_store()
            .get(cell)
            .expect("run() populated the store")
            .metrics)
    }

    /// A snapshot of the run report.
    #[must_use]
    pub fn report(&self) -> RunReport {
        self.report.lock().expect("report poisoned").clone()
    }

    /// Drops the in-memory layers (exact and sampled), keeping the disk
    /// cache — the cache round-trip tests use this to prove disk hits
    /// alone reproduce the results.
    pub fn clear_memory(&self) {
        self.store.clear();
        self.sampled_store.clear();
    }

    /// Folds a fuzzing campaign's iteration count into the run report
    /// (the binaries run the `bsched-verify` fuzzer alongside a
    /// verifying grid sweep and report both through one channel).
    pub fn record_fuzz(&self, iterations: u64) {
        self.report.lock().expect("report poisoned").fuzz_iterations += iterations;
    }

    fn execute(&self, cell: &ExperimentCell, verify: bool) -> Result<CellResult, HarnessError> {
        let idx = self.index[cell.kernel()];
        let program = &self.kernels[idx].1;
        let session = Experiment::builder()
            .program(cell.kernel(), program.clone())
            .compile_options(*cell.options())
            .engine(self.config.sim_engine)
            .sim_mode(self.config.sim_mode)
            .build()
            .map_err(|e| HarnessError::Cell {
                cell: cell.to_string(),
                msg: e.to_string(),
            })?;
        let run = session.run().map_err(|e| HarnessError::Cell {
            cell: cell.to_string(),
            msg: e.to_string(),
        })?;
        if !run.checksum_ok {
            return Err(HarnessError::Cell {
                cell: cell.to_string(),
                msg: "simulator diverged from the reference interpreter".to_string(),
            });
        }
        if let Some(stats) = run.sample {
            let mut r = self.report.lock().expect("report poisoned");
            r.sample_intervals += stats.intervals;
            r.sample_clusters += stats.clusters;
            r.sampled_insts += stats.sampled_insts;
            r.sample_total_insts += stats.total_insts;
        }
        if run.compile.exact.regions > 0 {
            let mut r = self.report.lock().expect("report poisoned");
            r.exact.merge(&run.compile.exact);
        }
        let verified = if verify {
            // A sampled cell's estimates cannot be judged against exact
            // metamorphic identities; its suite instead replays the cell
            // exactly and bounds the estimation error.
            let v = match self.config.sim_mode {
                SimMode::Exact => bsched_verify::verify_cell(program, cell.options(), &run.metrics),
                SimMode::Sampled(s) => {
                    bsched_verify::verify_cell_sampled(program, cell.options(), s)
                }
            };
            if !v.is_clean() {
                let mut r = self.report.lock().expect("report poisoned");
                r.violations += v.violations.len() as u64;
                drop(r);
                return Err(HarnessError::Cell {
                    cell: cell.to_string(),
                    msg: format!(
                        "verification failed ({} violations): {}",
                        v.violations.len(),
                        v.violations.join("; ")
                    ),
                });
            }
            true
        } else {
            false
        };
        Ok(CellResult {
            metrics: run.metrics,
            checksum_ok: true,
            verified,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn update_report(
        &self,
        requested: u64,
        deduplicated: u64,
        memory_hits: u64,
        disk_hits: u64,
        verified: u64,
        timings: &[CellTiming],
        stats: Option<&pool::PoolStats>,
    ) {
        let mut r = self.report.lock().expect("report poisoned");
        r.requested += requested;
        r.deduplicated += deduplicated;
        r.memory_hits += memory_hits;
        r.disk_hits += disk_hits;
        r.verified += verified;
        r.executed += timings.len() as u64;
        r.cell_timings.extend_from_slice(timings);
        if let Some(s) = stats {
            r.pool_wall += s.wall;
            r.steals += s.steals;
            if r.worker_busy.len() < s.busy.len() {
                r.worker_busy.resize(s.busy.len(), std::time::Duration::ZERO);
            }
            for (acc, b) in r.worker_busy.iter_mut().zip(&s.busy) {
                *acc += *b;
            }
        }
    }
}
