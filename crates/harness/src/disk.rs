//! The on-disk content-addressed result cache.
//!
//! Layout: one JSON document per cell at
//!
//! ```text
//! <cache_dir>/v<CACHE_SCHEMA_VERSION>/<16-hex-digit FNV-1a hash>.json
//! ```
//!
//! The schema version appears twice by design: in the directory name
//! (so a bumped format never even reads old files) and inside each
//! document (defence in depth). Each document also stores the full
//! canonical key; a hash collision — astronomically unlikely but free to
//! check — is detected by key mismatch and treated as a miss.
//!
//! Writes go through a temp file + rename so a crashed run can never
//! leave a torn document behind; a rename that loses a race with a
//! concurrent run of the same cell writes identical bytes anyway.

use crate::cell::{ExperimentCell, CACHE_SCHEMA_VERSION};
use crate::engine::CellResult;
use bsched_mem::MemStats;
use bsched_sim::{InstCounts, SimMetrics};
use bsched_util::Json;
use std::path::{Path, PathBuf};

/// Handle to the cache directory.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    enabled: bool,
}

impl DiskCache {
    /// A cache rooted at `dir` (the version subdirectory is appended
    /// internally). Nothing is created until the first store.
    #[must_use]
    pub fn new(dir: &Path, enabled: bool) -> Self {
        DiskCache {
            dir: dir.join(format!("v{CACHE_SCHEMA_VERSION}")),
            enabled,
        }
    }

    /// Whether the disk layer is active (`BSCHED_NO_CACHE=1` disables
    /// it).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The file a cell would be stored at.
    #[must_use]
    pub fn path_for(&self, cell: &ExperimentCell) -> PathBuf {
        self.dir.join(format!("{:016x}.json", cell.content_hash()))
    }

    /// Attempts to load a cell's result. Any failure — missing file,
    /// parse error, schema or key mismatch — is a cache miss, never an
    /// error: the cache is an accelerator, not a source of truth.
    #[must_use]
    pub fn load(&self, cell: &ExperimentCell) -> Option<CellResult> {
        if !self.enabled {
            return None;
        }
        let text = std::fs::read_to_string(self.path_for(cell)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("schema")?.as_u64()? != u64::from(CACHE_SCHEMA_VERSION) {
            return None;
        }
        if doc.get("key")?.as_str()? != cell.canonical_key() {
            return None; // hash collision or stale generation
        }
        let checksum_ok = doc.get("checksum_ok")?.as_bool()?;
        let verified = doc.get("verified")?.as_bool()?;
        let metrics = decode_metrics(doc.get("metrics")?)?;
        Some(CellResult {
            metrics,
            checksum_ok,
            verified,
        })
    }

    /// Stores a cell's result. I/O failures are reported to stderr and
    /// otherwise ignored — a read-only checkout must not break runs.
    pub fn store(&self, cell: &ExperimentCell, result: &CellResult) {
        if !self.enabled {
            return;
        }
        let path = self.path_for(cell);
        let doc = Json::obj(vec![
            ("schema", Json::u64(u64::from(CACHE_SCHEMA_VERSION))),
            ("key", Json::Str(cell.canonical_key().to_string())),
            ("checksum_ok", Json::Bool(result.checksum_ok)),
            ("verified", Json::Bool(result.verified)),
            ("metrics", encode_metrics(&result.metrics)),
        ]);
        let text = doc.to_string_compact();
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, text.as_bytes())?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!("bsched-harness: cache write to {} failed: {e}", path.display());
        }
    }
}

/// Encodes simulator metrics as the flat JSON document both the disk
/// cache and the `bsched-serve` wire protocol use — one codec, so a
/// served result and a cached result are byte-identical by
/// construction.
#[must_use]
pub fn encode_metrics(m: &SimMetrics) -> Json {
    Json::obj(vec![
        ("cycles", Json::u64(m.cycles)),
        ("load_interlock", Json::u64(m.load_interlock)),
        ("fixed_interlock", Json::u64(m.fixed_interlock)),
        ("branch_penalty", Json::u64(m.branch_penalty)),
        ("store_stall", Json::u64(m.store_stall)),
        ("fetch_stall", Json::u64(m.fetch_stall)),
        ("tlb_stall", Json::u64(m.tlb_stall)),
        ("insts", encode_insts(&m.insts)),
        ("mem", encode_mem(&m.mem)),
    ])
}

fn encode_insts(i: &InstCounts) -> Json {
    Json::obj(vec![
        ("short_int", Json::u64(i.short_int)),
        ("long_int", Json::u64(i.long_int)),
        ("loads", Json::u64(i.loads)),
        ("stores", Json::u64(i.stores)),
        ("short_fp", Json::u64(i.short_fp)),
        ("long_fp", Json::u64(i.long_fp)),
        ("branches", Json::u64(i.branches)),
        ("jumps", Json::u64(i.jumps)),
        ("spills", Json::u64(i.spills)),
    ])
}

fn encode_mem(s: &MemStats) -> Json {
    Json::obj(vec![
        ("l1d_hits", Json::u64(s.l1d_hits)),
        ("l2_hits", Json::u64(s.l2_hits)),
        ("l3_hits", Json::u64(s.l3_hits)),
        ("mem_reads", Json::u64(s.mem_reads)),
        ("mshr_merges", Json::u64(s.mshr_merges)),
        ("mshr_stall_cycles", Json::u64(s.mshr_stall_cycles)),
        ("dtb_misses", Json::u64(s.dtb_misses)),
        ("itb_misses", Json::u64(s.itb_misses)),
        ("icache_misses", Json::u64(s.icache_misses)),
        ("stores", Json::u64(s.stores)),
        ("wb_stall_cycles", Json::u64(s.wb_stall_cycles)),
        ("prefetches", Json::u64(s.prefetches)),
        ("prefetch_useful", Json::u64(s.prefetch_useful)),
    ])
}

/// Decodes a document produced by [`encode_metrics`]. `None` on any
/// missing or mistyped field.
#[must_use]
pub fn decode_metrics(doc: &Json) -> Option<SimMetrics> {
    let u = |key: &str| doc.get(key).and_then(Json::as_u64);
    let insts_doc = doc.get("insts")?;
    let iu = |key: &str| insts_doc.get(key).and_then(Json::as_u64);
    let mem_doc = doc.get("mem")?;
    let mu = |key: &str| mem_doc.get(key).and_then(Json::as_u64);
    Some(SimMetrics {
        cycles: u("cycles")?,
        load_interlock: u("load_interlock")?,
        fixed_interlock: u("fixed_interlock")?,
        branch_penalty: u("branch_penalty")?,
        store_stall: u("store_stall")?,
        fetch_stall: u("fetch_stall")?,
        tlb_stall: u("tlb_stall")?,
        insts: InstCounts {
            short_int: iu("short_int")?,
            long_int: iu("long_int")?,
            loads: iu("loads")?,
            stores: iu("stores")?,
            short_fp: iu("short_fp")?,
            long_fp: iu("long_fp")?,
            branches: iu("branches")?,
            jumps: iu("jumps")?,
            spills: iu("spills")?,
        },
        mem: MemStats {
            l1d_hits: mu("l1d_hits")?,
            l2_hits: mu("l2_hits")?,
            l3_hits: mu("l3_hits")?,
            mem_reads: mu("mem_reads")?,
            mshr_merges: mu("mshr_merges")?,
            mshr_stall_cycles: mu("mshr_stall_cycles")?,
            dtb_misses: mu("dtb_misses")?,
            itb_misses: mu("itb_misses")?,
            icache_misses: mu("icache_misses")?,
            stores: mu("stores")?,
            wb_stall_cycles: mu("wb_stall_cycles")?,
            prefetches: mu("prefetches")?,
            prefetch_useful: mu("prefetch_useful")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_pipeline::{CompileOptions, SchedulerKind};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bsched-harness-disk-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_result() -> CellResult {
        let mut m = SimMetrics {
            cycles: 123_456,
            load_interlock: 789,
            ..SimMetrics::default()
        };
        m.insts.loads = 42;
        m.mem.l1d_hits = 40;
        CellResult {
            metrics: m,
            checksum_ok: true,
            verified: false,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let cache = DiskCache::new(&dir, true);
        let cell = ExperimentCell::new("tomcatv", CompileOptions::new(SchedulerKind::Balanced));
        assert!(cache.load(&cell).is_none());
        let result = sample_result();
        cache.store(&cell, &result);
        let back = cache.load(&cell).expect("stored result loads");
        assert_eq!(back.metrics.cycles, result.metrics.cycles);
        assert_eq!(back.metrics.insts.loads, 42);
        assert_eq!(back.metrics.mem.l1d_hits, 40);
        assert!(back.checksum_ok);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let dir = tmp_dir("disabled");
        let cache = DiskCache::new(&dir, false);
        let cell = ExperimentCell::new("k", CompileOptions::new(SchedulerKind::Balanced));
        cache.store(&cell, &sample_result());
        assert!(cache.load(&cell).is_none());
        assert!(!dir.exists(), "disabled cache must not touch the disk");
    }

    #[test]
    fn corrupt_or_mismatched_documents_are_misses() {
        let dir = tmp_dir("corrupt");
        let cache = DiskCache::new(&dir, true);
        let cell = ExperimentCell::new("k", CompileOptions::new(SchedulerKind::Balanced));
        cache.store(&cell, &sample_result());
        let path = cache.path_for(&cell);

        // Torn/garbage file.
        std::fs::write(&path, b"{not json").unwrap();
        assert!(cache.load(&cell).is_none());

        // Valid JSON, wrong key (as after a hash collision).
        let other = ExperimentCell::new("other", CompileOptions::new(SchedulerKind::Balanced));
        cache.store(&other, &sample_result());
        std::fs::copy(cache.path_for(&other), &path).unwrap();
        assert!(cache.load(&cell).is_none(), "key mismatch must be a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_is_version_stamped() {
        let dir = tmp_dir("version");
        let cache = DiskCache::new(&dir, true);
        let cell = ExperimentCell::new("k", CompileOptions::new(SchedulerKind::Balanced));
        cache.store(&cell, &sample_result());
        assert!(dir.join(format!("v{CACHE_SCHEMA_VERSION}")).is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
