//! Experiment cells and their canonical, version-stamped cache keys.

use bsched_core::{SchedulerKind, TieBreak};
use bsched_mem::{CacheConfig, MemConfig};
use bsched_pipeline::CompileOptions;
use bsched_sim::SimConfig;
use bsched_util::Fnv1a;
use std::cmp::Ordering;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

/// Version stamp of the canonical cell encoding *and* of the on-disk
/// cache document format. Bump whenever either changes meaning — e.g. a
/// new `CompileOptions` field, a simulator metric added, a latency
/// constant recalibrated — so stale cache files are ignored rather than
/// misread.
///
/// v2: `CompileOptions` gained `reference_weights` (naive-vs-kernel
/// weight benching), serialized as `refweights=`.
///
/// v3: cached documents gained the `verified` flag recording that the
/// `bsched-verify` conformance suite passed when the cell was computed;
/// verifying runs treat unverified cached cells as misses.
///
/// v4: `CompileOptions` gained the exact scheduler arm and its
/// `exact_budget` knob, serialized as `sched=exact` / `exact_budget=`.
/// The budget is metrics-relevant — a larger budget can prove a better
/// schedule for the same cell — so it must key the cache; its unit is
/// deterministic search nodes, never wall clock, so budgeted results
/// stay machine-independent and cacheable.
///
/// v5: the MachineSpec redesign added three metrics-relevant machine
/// axes — the branch-predictor kind (`bp_kind=`), the L1D prefetcher
/// (`prefetch=`), and the MSHR policy (`mshr_policy=`) — and the cached
/// memory stats gained prefetch counters.
pub const CACHE_SCHEMA_VERSION: u32 = 5;

/// One deduplicated unit of experimental work: a kernel compiled under
/// one full option set (the options embed the simulated machine).
///
/// Equality, ordering and hashing all go through the canonical key, so
/// two cells built independently from equal inputs collapse to one grid
/// entry, and `BTreeMap<ExperimentCell, _>` iterates in a stable,
/// platform-independent order.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    kernel: String,
    opts: CompileOptions,
    canon: String,
}

impl ExperimentCell {
    /// Builds a cell and precomputes its canonical key.
    #[must_use]
    pub fn new(kernel: &str, opts: CompileOptions) -> Self {
        let canon = canonical_key(kernel, &opts);
        ExperimentCell {
            kernel: kernel.to_string(),
            opts,
            canon,
        }
    }

    /// The kernel name.
    #[must_use]
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The compile options (machine configuration included).
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// The canonical key: a flat, human-readable serialization of every
    /// result-affecting field, prefixed with [`CACHE_SCHEMA_VERSION`].
    #[must_use]
    pub fn canonical_key(&self) -> &str {
        &self.canon
    }

    /// Stable FNV-1a content hash of the canonical key — the address of
    /// this cell in the on-disk cache.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        Fnv1a::hash(self.canon.as_bytes())
    }
}

impl PartialEq for ExperimentCell {
    fn eq(&self, other: &Self) -> bool {
        self.canon == other.canon
    }
}
impl Eq for ExperimentCell {}

impl PartialOrd for ExperimentCell {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ExperimentCell {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canon.cmp(&other.canon)
    }
}

impl Hash for ExperimentCell {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canon.hash(state);
    }
}

impl std::fmt::Display for ExperimentCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.kernel, self.opts.label())
    }
}

/// Serializes every field of the cell that can influence its metrics.
///
/// The encoding is exhaustive by hand: each struct's fields are written
/// in declaration order with explicit names, so two option sets differing
/// in *any* field — including ablation knobs like `weight_cap` or the
/// write-buffer depth — produce different keys, while label collisions
/// (e.g. two configs that both print as `BS+LU4`) cannot alias.
fn canonical_key(kernel: &str, o: &CompileOptions) -> String {
    let mut s = String::with_capacity(256);
    let _ = write!(s, "v{CACHE_SCHEMA_VERSION};kernel={kernel}");
    let _ = write!(s, ";sched={}", scheduler_tag(o.scheduler));
    match o.unroll {
        None => s.push_str(";unroll=-"),
        Some(f) => {
            let _ = write!(s, ";unroll={f}");
        }
    }
    let _ = write!(s, ";trace={}", u8::from(o.trace));
    let _ = write!(s, ";locality={}", u8::from(o.locality));
    let _ = write!(s, ";predicate={}", u8::from(o.predicate));
    let _ = write!(s, ";weight_cap={}", o.weight_cap);
    let _ = write!(s, ";tie_break={}", tie_break_tag(o.tie_break));
    match o.unroll_budget {
        None => s.push_str(";unroll_budget=-"),
        Some(b) => {
            let _ = write!(s, ";unroll_budget={b}");
        }
    }
    let _ = write!(s, ";selective={}", u8::from(o.selective));
    let _ = write!(s, ";refweights={}", u8::from(o.reference_weights));
    let _ = write!(s, ";exact_budget={}", o.exact_budget);
    canon_sim(&o.sim, &mut s);
    s
}

fn scheduler_tag(k: SchedulerKind) -> &'static str {
    match k {
        SchedulerKind::Traditional => "trad",
        SchedulerKind::Balanced => "bal",
        SchedulerKind::SelectiveBalanced => "selbal",
        SchedulerKind::Exact => "exact",
    }
}

fn tie_break_tag(t: TieBreak) -> &'static str {
    match t {
        TieBreak::Standard => "std",
        TieBreak::ExposedFirst => "exposed",
        TieBreak::ProgramOrder => "order",
    }
}

fn canon_sim(c: &SimConfig, s: &mut String) {
    canon_mem(&c.mem, s);
    let _ = write!(
        s,
        ";bp_kind={};bp_entries={};bp_penalty={}",
        c.branch.kind.label(),
        c.branch.entries,
        c.branch.mispredict_penalty
    );
    let _ = write!(s, ";fuel={}", c.fuel);
    let _ = write!(s, ";ifetch={}", u8::from(c.model_ifetch));
    let _ = write!(s, ";issue={};ports={}", c.issue_width, c.mem_ports);
    let _ = write!(s, ";uniform_fixed={}", u8::from(c.uniform_fixed_latency));
}

fn canon_mem(m: &MemConfig, s: &mut String) {
    canon_cache("l1d", &m.l1d, s);
    canon_cache("icache", &m.icache, s);
    canon_cache("l2", &m.l2, s);
    match &m.l3 {
        None => s.push_str(";l3=-"),
        Some(c) => canon_cache("l3", c, s),
    }
    let _ = write!(s, ";mem_latency={};mshrs={}", m.mem_latency, m.mshrs);
    let _ = write!(
        s,
        ";prefetch={};mshr_policy={}",
        m.prefetch.label(),
        m.mshr_policy.label()
    );
    let _ = write!(
        s,
        ";dtb={};itb={};page={};tlb_penalty={}",
        m.dtb_entries, m.itb_entries, m.page_size, m.tlb_miss_penalty
    );
    match m.write_buffer {
        None => s.push_str(";wb=-"),
        Some(n) => {
            let _ = write!(s, ";wb={n}");
        }
    }
    let _ = write!(s, ";wb_drain={}", m.write_drain_cycles);
}

fn canon_cache(name: &str, c: &CacheConfig, s: &mut String) {
    let _ = write!(
        s,
        ";{name}={}x{}w{}l{}",
        c.size, c.line, c.assoc, c.latency
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_pipeline::SchedulerKind;

    fn base() -> CompileOptions {
        CompileOptions::new(SchedulerKind::Balanced)
    }

    #[test]
    fn equal_inputs_collapse() {
        let a = ExperimentCell::new("tomcatv", base().with_unroll(4));
        let b = ExperimentCell::new("tomcatv", base().with_unroll(4));
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn every_knob_changes_the_key() {
        let cell = |o: CompileOptions| ExperimentCell::new("k", o).canonical_key().to_string();
        let reference = cell(base());
        let variants = [
            cell(CompileOptions::new(SchedulerKind::Traditional)),
            cell(base().with_unroll(4)),
            cell(base().with_unroll(8)),
            cell(base().with_trace()),
            cell(base().with_locality()),
            cell(base().without_predication()),
            cell(base().with_weight_cap(10)),
            cell(base().with_tie_break(TieBreak::ProgramOrder)),
            cell(base().with_unroll_budget(32)),
            cell(base().without_selective()),
            cell(base().with_reference_weights()),
            cell(CompileOptions::new(SchedulerKind::Exact)),
            cell(base().with_exact_budget(7)),
            cell(base().with_sim(SimConfig::default().with_issue(4, 2))),
            cell(base().with_sim(SimConfig::default().with_issue(4, 4))),
            cell(base().with_sim(SimConfig::default().with_mshrs(1))),
            cell(base().with_sim(SimConfig::default().with_ifetch(false))),
            cell(base().with_sim(SimConfig::default().simple_model_1993())),
            cell(base().with_sim(
                SimConfig::default().with_predictor(bsched_sim::PredictorKind::Gshare),
            )),
            cell(base().with_sim(
                SimConfig::default().with_predictor(bsched_sim::PredictorKind::TageLite),
            )),
            cell(base().with_sim(
                SimConfig::default().with_prefetch(bsched_mem::PrefetchKind::NextLine),
            )),
            cell(base().with_sim(
                SimConfig::default().with_prefetch(bsched_mem::PrefetchKind::Stride),
            )),
            cell(base().with_sim(
                SimConfig::default().with_mshr_policy(bsched_mem::MshrPolicy::NoMerge),
            )),
            cell(base().with_sim(
                SimConfig::default().with_mshr_policy(bsched_mem::MshrPolicy::Blocking),
            )),
        ];
        let mut all = vec![reference.clone()];
        all.extend(variants.iter().cloned());
        let distinct: std::collections::HashSet<&String> = all.iter().collect();
        assert_eq!(distinct.len(), all.len(), "some knob did not reach the key");
        for v in &variants {
            assert_ne!(v, &reference);
        }
    }

    #[test]
    fn kernel_reaches_the_key_and_labels_cannot_alias() {
        let a = ExperimentCell::new("tomcatv", base());
        let b = ExperimentCell::new("su2cor", base());
        assert_ne!(a, b);
        // Same display label, different ablation knob: keys differ.
        let c = ExperimentCell::new("tomcatv", base().with_weight_cap(10));
        assert_eq!(a.options().label(), c.options().label());
        assert_ne!(a, c);
    }

    #[test]
    fn key_is_version_stamped() {
        let a = ExperimentCell::new("k", base());
        assert!(a
            .canonical_key()
            .starts_with(&format!("v{CACHE_SCHEMA_VERSION};")));
    }

    #[test]
    fn ordering_is_stable_and_total() {
        let mut cells = [
            ExperimentCell::new("b", base()),
            ExperimentCell::new("a", base().with_unroll(4)),
            ExperimentCell::new("a", base()),
        ];
        cells.sort();
        let keys: Vec<&str> = cells.iter().map(ExperimentCell::canonical_key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
