//! Structured run reports: what the engine did and where the time went.

use bsched_core::ExactStats;
use std::time::Duration;

/// Writes `text` to stderr as one `write_all` on the locked handle, so
/// a multi-line report cannot interleave with lines written by other
/// threads. The binaries render everything first (run report, trace
/// summary, diagnostics) and emit the buffer through here — under high
/// `BSCHED_JOBS` the per-line `eprintln!` path produced torn reports.
pub fn emit_stderr(text: &str) {
    use std::io::Write as _;
    let stderr = std::io::stderr();
    let mut locked = stderr.lock();
    let _ = locked.write_all(text.as_bytes());
    let _ = locked.flush();
}

/// One executed (cache-missing) cell's timing.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// `kernel/label` of the cell.
    pub cell: String,
    /// Wall time of the compile+simulate for this cell.
    pub wall: Duration,
}

/// Aggregate observability data for every `Engine::run` so far.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Cells requested across all `run` calls (before deduplication).
    pub requested: u64,
    /// Duplicates removed within request batches.
    pub deduplicated: u64,
    /// Cells answered from the in-memory store.
    pub memory_hits: u64,
    /// Cells answered from the on-disk cache.
    pub disk_hits: u64,
    /// Cells actually executed (cache misses).
    pub executed: u64,
    /// Cells whose conformance suite passed (executed under `--verify`,
    /// or served from a cache entry that was verified when computed).
    pub verified: u64,
    /// Conformance violations found (a nonzero count always accompanies
    /// a run failure — violations are errors, not warnings).
    pub violations: u64,
    /// Iterations completed by the pipeline fuzzer, when one ran.
    pub fuzz_iterations: u64,
    /// Worker count used for parallel batches.
    pub workers: usize,
    /// Label of the simulation engine executing cells (empty when the
    /// engine was never configured, e.g. in unit tests).
    pub sim_engine: String,
    /// Label of the simulation mode (`exact`, or `sampled(<spec>)`;
    /// empty when the engine was never configured).
    pub sim_mode: String,
    /// Intervals profiled across executed sampled cells.
    pub sample_intervals: u64,
    /// Clusters (phases) found across executed sampled cells.
    pub sample_clusters: u64,
    /// Retired instructions cycle-simulated across executed sampled
    /// cells.
    pub sampled_insts: u64,
    /// Total retired instructions across executed sampled cells (the
    /// coverage denominator).
    pub sample_total_insts: u64,
    /// Exact-search statistics aggregated over executed exact-arm cells
    /// (regions searched, optima proven, budget fallbacks, nodes, and
    /// the heuristic-vs-exact issue-span costs behind "% of optimal").
    pub exact: ExactStats,
    /// Busy time per worker, summed over batches.
    pub worker_busy: Vec<Duration>,
    /// Wall time spent inside parallel batches.
    pub pool_wall: Duration,
    /// Successful steals across batches.
    pub steals: u64,
    /// Per-cell wall time of every executed cell.
    pub cell_timings: Vec<CellTiming>,
}

impl RunReport {
    /// Cache hit count (memory + disk).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Hit fraction over unique requested cells in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let unique = self.hits() + self.executed;
        if unique == 0 {
            0.0
        } else {
            self.hits() as f64 / unique as f64
        }
    }

    /// Mean worker utilization over pool wall time.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.pool_wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        (busy / (self.pool_wall.as_secs_f64() * self.workers as f64)).min(1.0)
    }

    /// The `n` slowest executed cells, most expensive first.
    #[must_use]
    pub fn slowest(&self, n: usize) -> Vec<&CellTiming> {
        let mut sorted: Vec<&CellTiming> = self.cell_timings.iter().collect();
        sorted.sort_by(|a, b| b.wall.cmp(&a.wall).then_with(|| a.cell.cmp(&b.cell)));
        sorted.truncate(n);
        sorted
    }

    /// Renders the report as human-readable text (the binaries print
    /// this to stderr so stdout stays byte-deterministic).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "── bsched-harness run report ──");
        let _ = writeln!(
            s,
            "cells: {} requested, {} deduplicated, {} memory hits, {} disk hits, {} executed ({:.0}% cache hits)",
            self.requested,
            self.deduplicated,
            self.memory_hits,
            self.disk_hits,
            self.executed,
            self.hit_rate() * 100.0
        );
        if self.verified > 0 || self.violations > 0 || self.fuzz_iterations > 0 {
            let _ = writeln!(
                s,
                "verification: {} cells verified, {} violations, {} fuzz iterations",
                self.verified, self.violations, self.fuzz_iterations
            );
        }
        if self.sample_total_insts > 0 {
            let _ = writeln!(
                s,
                "sampling: {} intervals, {} clusters, {}/{} insts cycle-simulated ({:.0}% coverage)",
                self.sample_intervals,
                self.sample_clusters,
                self.sampled_insts,
                self.sample_total_insts,
                self.sampled_insts as f64 / self.sample_total_insts as f64 * 100.0
            );
        }
        if self.exact.regions > 0 {
            let _ = writeln!(
                s,
                "exact: {} regions searched, {} proven, {} fallbacks, {} nodes, \
                 {:.1}% of optimal (heuristic seed {} vs exact {} issue cycles)",
                self.exact.regions,
                self.exact.proven,
                self.exact.fallbacks,
                self.exact.nodes,
                self.exact.pct_of_optimal(),
                self.exact.heuristic_cost,
                self.exact.exact_cost,
            );
        }
        if self.executed > 0 {
            if !self.sim_engine.is_empty() {
                let _ = writeln!(s, "engine: {}", self.sim_engine);
            }
            if !self.sim_mode.is_empty() && self.sim_mode != "exact" {
                let _ = writeln!(s, "mode: {}", self.sim_mode);
            }
            let total_busy: Duration = self.worker_busy.iter().sum();
            let _ = writeln!(
                s,
                "pool: {} workers, {:.3}s wall, {:.3}s busy ({:.0}% utilization), {} steals",
                self.workers,
                self.pool_wall.as_secs_f64(),
                total_busy.as_secs_f64(),
                self.utilization() * 100.0,
                self.steals
            );
            let (hits, misses, entries) = bsched_ir::analysis::cache_stats();
            if hits + misses > 0 {
                let _ = writeln!(
                    s,
                    "dag-analysis cache: {hits} hits, {misses} misses, {entries} entries ({:.0}% shared)",
                    hits as f64 / (hits + misses) as f64 * 100.0
                );
            }
            let _ = writeln!(s, "slowest cells:");
            for t in self.slowest(5) {
                let _ = writeln!(s, "  {:>9.3}s  {}", t.wall.as_secs_f64(), t.cell);
            }
        }
        s
    }

    /// Renders and writes the report to stderr atomically (see
    /// [`emit_stderr`]).
    pub fn emit(&self) {
        emit_stderr(&self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(cell: &str, ms: u64) -> CellTiming {
        CellTiming {
            cell: cell.to_string(),
            wall: Duration::from_millis(ms),
        }
    }

    #[test]
    fn hit_rate_counts_both_cache_layers() {
        let r = RunReport {
            requested: 20,
            memory_hits: 6,
            disk_hits: 3,
            executed: 1,
            ..RunReport::default()
        };
        assert_eq!(r.hits(), 9);
        assert!((r.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(RunReport::default().hit_rate(), 0.0);
    }

    #[test]
    fn slowest_sorts_descending_and_truncates() {
        let r = RunReport {
            cell_timings: vec![timing("a", 5), timing("b", 50), timing("c", 20)],
            ..RunReport::default()
        };
        let top: Vec<&str> = r.slowest(2).iter().map(|t| t.cell.as_str()).collect();
        assert_eq!(top, vec!["b", "c"]);
    }

    #[test]
    fn render_mentions_the_essentials() {
        let r = RunReport {
            requested: 4,
            executed: 2,
            workers: 2,
            worker_busy: vec![Duration::from_millis(10); 2],
            pool_wall: Duration::from_millis(12),
            cell_timings: vec![timing("k/BS", 7), timing("k/TS", 3)],
            ..RunReport::default()
        };
        let text = r.render();
        assert!(text.contains("2 executed"));
        assert!(text.contains("slowest cells"));
        assert!(text.contains("k/BS"));
    }
}
