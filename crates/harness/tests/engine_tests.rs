//! Integration tests for the experiment engine: determinism across
//! worker counts, disk-cache round trips, and cache accounting.

use bsched_harness::{Engine, EngineConfig, ExperimentCell, HarnessError};
use bsched_ir::Program;
use bsched_pipeline::{CompileOptions, SchedulerKind};
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};
use std::path::PathBuf;

/// A small kernel so the whole grid runs in well under a second.
fn tiny_kernel(name: &str, n: i64, seed: u64) -> (String, Program) {
    let mut k = Kernel::new(name);
    let a = k.array("a", (n + 8) as u64, ArrayInit::Random(seed));
    let out = k.array("out", (n + 8) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let body = vec![k.store(
        out,
        Index::of(i),
        Expr::load(a, Index::of(i)) * Expr::Float(1.5) + Expr::load(a, Index::of_plus(i, 1)),
    )];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
    (name.to_string(), k.lower())
}

fn kernels() -> Vec<(String, Program)> {
    vec![tiny_kernel("alpha", 48, 3), tiny_kernel("beta", 64, 11)]
}

fn cells() -> Vec<ExperimentCell> {
    let mut cells = Vec::new();
    for kernel in ["alpha", "beta"] {
        for opts in [
            CompileOptions::new(SchedulerKind::Balanced),
            CompileOptions::new(SchedulerKind::Traditional),
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
            // Same display label as plain balanced — only the canonical
            // key separates them.
            CompileOptions::new(SchedulerKind::Balanced).with_weight_cap(10),
        ] {
            cells.push(ExperimentCell::new(kernel, opts));
        }
    }
    cells
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsched-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Debug output covers every metric field, so equal strings mean equal
/// metrics.
fn fingerprint(engine: &Engine, cells: &[ExperimentCell]) -> Vec<String> {
    cells
        .iter()
        .map(|c| {
            let r = engine.result(c).expect("cell was run");
            assert!(r.checksum_ok);
            format!("{c}: {:?}", r.metrics)
        })
        .collect()
}

#[test]
fn results_are_identical_across_worker_counts() {
    let cells = cells();
    let mut baseline = None;
    for jobs in [1usize, 4] {
        let cfg = EngineConfig::default()
            .with_jobs(jobs)
            .with_disk_cache(false);
        let engine = Engine::new(kernels(), cfg);
        engine.run(&cells).expect("grid runs");
        let fp = fingerprint(&engine, &cells);
        let report = engine.report();
        assert_eq!(report.executed, cells.len() as u64, "{jobs} workers");
        assert_eq!(report.hits(), 0, "{jobs} workers");
        match &baseline {
            None => baseline = Some(fp),
            Some(b) => assert_eq!(b, &fp, "worker count changed the results"),
        }
    }
}

#[test]
fn disk_cache_round_trips_and_counts_hits() {
    let dir = tmp_dir("roundtrip");
    let cells = cells();
    let cfg = || {
        EngineConfig::default()
            .with_jobs(2)
            .with_cache_dir(dir.clone())
    };

    // Cold run: everything executes, results land on disk.
    let cold = Engine::new(kernels(), cfg());
    cold.run(&cells).expect("cold run");
    let want = fingerprint(&cold, &cells);
    assert_eq!(cold.report().executed, cells.len() as u64);
    drop(cold);

    // Fresh engine, same directory: pure disk hits, nothing executes.
    let warm = Engine::new(kernels(), cfg());
    warm.run(&cells).expect("warm run");
    assert_eq!(warm.report().disk_hits, cells.len() as u64);
    assert_eq!(warm.report().executed, 0);
    assert_eq!(fingerprint(&warm, &cells), want);

    // Same engine again: now the memory layer answers.
    warm.run(&cells).expect("memory run");
    assert_eq!(warm.report().memory_hits, cells.len() as u64);

    // Dropping memory forces the disk layer again, with equal results.
    warm.clear_memory();
    warm.run(&cells).expect("post-clear run");
    assert_eq!(warm.report().disk_hits, 2 * cells.len() as u64);
    assert_eq!(warm.report().executed, 0);
    assert_eq!(fingerprint(&warm, &cells), want);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicates_within_a_batch_are_deduplicated() {
    let cfg = EngineConfig::default()
        .with_jobs(2)
        .with_disk_cache(false);
    let engine = Engine::new(kernels(), cfg);
    let one = ExperimentCell::new("alpha", CompileOptions::new(SchedulerKind::Balanced));
    let batch = vec![one.clone(), one.clone(), one.clone()];
    engine.run(&batch).expect("runs");
    let report = engine.report();
    assert_eq!(report.requested, 3);
    assert_eq!(report.deduplicated, 2);
    assert_eq!(report.executed, 1);
}

#[test]
fn same_label_different_options_are_distinct_cells() {
    let cfg = EngineConfig::default()
        .with_jobs(1)
        .with_disk_cache(false);
    let engine = Engine::new(kernels(), cfg);
    let plain = ExperimentCell::new("alpha", CompileOptions::new(SchedulerKind::Balanced));
    let capped = ExperimentCell::new(
        "alpha",
        CompileOptions::new(SchedulerKind::Balanced).with_weight_cap(4),
    );
    assert_eq!(plain.to_string(), capped.to_string(), "labels alias");
    engine.run(&[plain.clone(), capped.clone()]).expect("runs");
    assert_eq!(engine.report().executed, 2, "cells must not collapse");
}

#[test]
fn corrupt_cache_documents_recompute_without_panicking() {
    use bsched_harness::disk::DiskCache;
    let dir = tmp_dir("corruption");
    let cells = cells();
    let cfg = || {
        EngineConfig::default()
            .with_jobs(2)
            .with_cache_dir(dir.clone())
    };

    let cold = Engine::new(kernels(), cfg());
    cold.run(&cells).expect("cold run");
    let want = fingerprint(&cold, &cells);
    drop(cold);

    // Damage three documents three different ways: truncation (torn
    // write), garbage bytes, and a wrong schema stamp.
    let disk = DiskCache::new(&dir, true);
    let paths: Vec<PathBuf> = cells.iter().take(3).map(|c| disk.path_for(c)).collect();
    let full = std::fs::read_to_string(&paths[0]).unwrap();
    std::fs::write(&paths[0], &full[..full.len() / 2]).unwrap();
    std::fs::write(&paths[1], b"\x00\xffnot json at all").unwrap();
    std::fs::write(
        &paths[2],
        full.replacen("\"schema\":", "\"schema\":9999, \"x\":", 1),
    )
    .unwrap();

    // A fresh engine treats all three as misses — recomputed, counted
    // as executions, results unchanged.
    let warm = Engine::new(kernels(), cfg());
    warm.run(&cells).expect("corruption must not fail the run");
    let report = warm.report();
    assert_eq!(report.executed, 3, "each damaged document recomputes");
    assert_eq!(report.disk_hits, cells.len() as u64 - 3);
    assert_eq!(fingerprint(&warm, &cells), want);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verifying_run_proves_every_cell_and_reports_it() {
    let cells = cells();
    let cfg = EngineConfig::default()
        .with_jobs(2)
        .with_disk_cache(false)
        .with_verify(true);
    let engine = Engine::new(kernels(), cfg);
    engine.run(&cells).expect("grid verifies");
    let report = engine.report();
    assert_eq!(report.executed, cells.len() as u64);
    assert_eq!(report.verified, cells.len() as u64);
    assert_eq!(report.violations, 0);
    for c in &cells {
        assert!(engine.result(c).unwrap().verified, "{c} not verified");
    }
    assert!(report.render().contains("cells verified"));
}

#[test]
fn verifying_run_recomputes_unverified_cache_entries() {
    let dir = tmp_dir("verify-upgrade");
    let cells = cells();
    let cfg = |verify: bool| {
        EngineConfig::default()
            .with_jobs(2)
            .with_cache_dir(dir.clone())
            .with_verify(verify)
    };

    // Plain run: results cached with verified == false.
    let plain = Engine::new(kernels(), cfg(false));
    plain.run(&cells).expect("plain run");
    let want = fingerprint(&plain, &cells);
    drop(plain);

    // A verifying engine must not trust them: every cell re-executes
    // (now under the conformance suite) and the upgraded entries land
    // back on disk.
    let checking = Engine::new(kernels(), cfg(true));
    checking.run(&cells).expect("verifying run");
    assert_eq!(checking.report().disk_hits, 0, "unverified entries are misses");
    assert_eq!(checking.report().executed, cells.len() as u64);
    assert_eq!(fingerprint(&checking, &cells), want);
    drop(checking);

    // Once verified, both verifying and plain engines take the hits.
    for verify in [true, false] {
        let warm = Engine::new(kernels(), cfg(verify));
        warm.run(&cells).expect("warm run");
        assert_eq!(warm.report().disk_hits, cells.len() as u64, "verify={verify}");
        assert_eq!(warm.report().executed, 0, "verify={verify}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_iterations_reach_the_report() {
    let engine = Engine::new(kernels(), EngineConfig::default().with_disk_cache(false));
    engine.record_fuzz(1234);
    let report = engine.report();
    assert_eq!(report.fuzz_iterations, 1234);
    assert!(report.render().contains("1234 fuzz iterations"));
}

#[test]
fn unknown_kernels_are_rejected() {
    let cfg = EngineConfig::default().with_disk_cache(false);
    let engine = Engine::new(kernels(), cfg);
    let cell = ExperimentCell::new("nonesuch", CompileOptions::new(SchedulerKind::Balanced));
    match engine.run(std::slice::from_ref(&cell)) {
        Err(HarnessError::UnknownKernel(k)) => assert_eq!(k, "nonesuch"),
        other => panic!("expected UnknownKernel, got {other:?}"),
    }
}
